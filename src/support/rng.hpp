#pragma once
// Deterministic, seedable pseudo-random number generation.
//
// Everything in this library that uses randomness (mesh jitter, particle
// initialisation, spray hotspots) goes through Rng so runs are reproducible
// from a single seed. The generator is xoshiro256** seeded via splitmix64;
// both are tiny, fast, and have well-understood statistical quality.

#include <cstdint>
#include <cmath>

#include "support/check.hpp"

namespace cpx {

/// splitmix64 step — used for seeding and for cheap stateless hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
      word = splitmix64(sm);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n) {
    CPX_DCHECK(n > 0);
    // Lemire's multiply-shift rejection-free bound is overkill here; simple
    // modulo bias is negligible for the n << 2^64 values we use.
    return (*this)() % n;
  }

  /// Standard normal via Box-Muller (polar form would need caching; this
  /// stays stateless per call apart from the generator).
  double normal() {
    double u1 = uniform();
    while (u1 <= 0.0) {
      u1 = uniform();
    }
    const double u2 = uniform();
    constexpr double kTwoPi = 6.28318530717958647692;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with the given rate.
  double exponential(double rate) {
    CPX_DCHECK(rate > 0.0);
    double u = uniform();
    while (u <= 0.0) {
      u = uniform();
    }
    return -std::log(u) / rate;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

/// Counter-based PRNG: every draw is a pure function of (seed, counter),
/// and the counter is ordinary persistent state. This is the generator
/// for anything that must survive checkpoint/restart (docs/checkpoint.md):
/// serialising the (seed, counter) pair and restoring it resumes the
/// stream at exactly the next draw, where a construction-time-seeded
/// stateful generator would silently replay from the beginning. Each
/// output is one splitmix64 step of seed ^ counter-increment, the same
/// mixer xoshiro seeding trusts.
class CounterRng {
 public:
  using result_type = std::uint64_t;

  explicit CounterRng(std::uint64_t seed = 0x5eed5eed5eedULL)
      : seed_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    std::uint64_t s = seed_ + counter_ * 0x9e3779b97f4a7c15ULL;
    ++counter_;
    return splitmix64(s);
  }

  std::uint64_t seed() const { return seed_; }
  /// Draws made so far — the persisted stream position.
  std::uint64_t counter() const { return counter_; }
  void restore_state(std::uint64_t seed, std::uint64_t counter) {
    seed_ = seed;
    counter_ = counter;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  std::uint64_t uniform_index(std::uint64_t n) {
    CPX_DCHECK(n > 0);
    return (*this)() % n;
  }

  /// Standard normal via Box-Muller (two draws per call, so the stream
  /// position stays a simple function of the call history).
  double normal() {
    double u1 = uniform();
    while (u1 <= 0.0) {
      u1 = uniform();
    }
    const double u2 = uniform();
    constexpr double kTwoPi = 6.28318530717958647692;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  double exponential(double rate) {
    CPX_DCHECK(rate > 0.0);
    double u = uniform();
    while (u <= 0.0) {
      u = uniform();
    }
    return -std::log(u) / rate;
  }

 private:
  std::uint64_t seed_ = 0;
  std::uint64_t counter_ = 0;
};

/// Stateless 64-bit mix of (seed, a, b) — handy for per-entity deterministic
/// randomness without carrying generator state (e.g. per-cell jitter).
constexpr std::uint64_t hash_mix(std::uint64_t seed, std::uint64_t a,
                                 std::uint64_t b = 0) {
  std::uint64_t s = seed ^ (a * 0x9e3779b97f4a7c15ULL) ^
                    (b * 0xc2b2ae3d27d4eb4fULL);
  return splitmix64(s);
}

}  // namespace cpx
