#include "support/blas1.hpp"

#include <cmath>
#include <cstdint>

#include "support/check.hpp"
#include "support/parallel.hpp"

namespace cpx::support::blas1 {
namespace {

// Fixed reduction grain (docs/parallelism.md): the partial-sum
// decomposition — and therefore every bit of the result — depends on the
// vector length alone, never on the thread count.
constexpr std::int64_t kBlasGrain = 4096;

}  // namespace

double sum(std::span<const double> a) {
  return parallel_reduce(
      0, static_cast<std::int64_t>(a.size()), kBlasGrain, 0.0,
      [&](std::int64_t lo, std::int64_t hi) {
        double s = 0.0;
        for (std::int64_t i = lo; i < hi; ++i) {
          s += a[static_cast<std::size_t>(i)];
        }
        return s;
      });
}

double dot(std::span<const double> a, std::span<const double> b) {
  CPX_REQUIRE(a.size() == b.size(), "blas1::dot: size mismatch");
  return parallel_reduce(
      0, static_cast<std::int64_t>(a.size()), kBlasGrain, 0.0,
      [&](std::int64_t lo, std::int64_t hi) {
        double s = 0.0;
        for (std::int64_t i = lo; i < hi; ++i) {
          s += a[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(i)];
        }
        return s;
      });
}

double norm2_squared(std::span<const double> a) {
  return parallel_reduce(
      0, static_cast<std::int64_t>(a.size()), kBlasGrain, 0.0,
      [&](std::int64_t lo, std::int64_t hi) {
        double s = 0.0;
        for (std::int64_t i = lo; i < hi; ++i) {
          const double v = a[static_cast<std::size_t>(i)];
          s += v * v;
        }
        return s;
      });
}

double norm2(std::span<const double> a) { return std::sqrt(norm2_squared(a)); }

void axpy2(double alpha, std::span<const double> p,
           std::span<const double> ap, std::span<double> x,
           std::span<double> r) {
  const auto n = x.size();
  CPX_REQUIRE(p.size() == n && ap.size() == n && r.size() == n,
              "blas1::axpy2: size mismatch");
  parallel_for(0, static_cast<std::int64_t>(n), kBlasGrain,
               [&](std::int64_t lo, std::int64_t hi) {
                 for (std::int64_t i = lo; i < hi; ++i) {
                   const auto k = static_cast<std::size_t>(i);
                   x[k] += alpha * p[k];
                   r[k] -= alpha * ap[k];
                 }
               });
}

double axpy2_norm2(double alpha, std::span<const double> p,
                   std::span<const double> ap, std::span<double> x,
                   std::span<double> r) {
  const auto n = x.size();
  CPX_REQUIRE(p.size() == n && ap.size() == n && r.size() == n,
              "blas1::axpy2_norm2: size mismatch");
  return parallel_reduce(0, static_cast<std::int64_t>(n), kBlasGrain, 0.0,
                         [&](std::int64_t lo, std::int64_t hi) {
                           double s = 0.0;
                           for (std::int64_t i = lo; i < hi; ++i) {
                             const auto k = static_cast<std::size_t>(i);
                             x[k] += alpha * p[k];
                             const double rv = r[k] - alpha * ap[k];
                             r[k] = rv;
                             s += rv * rv;
                           }
                           return s;
                         });
}

double dot_diff(std::span<const double> z, std::span<const double> a,
                std::span<const double> b) {
  const auto n = z.size();
  CPX_REQUIRE(a.size() == n && b.size() == n,
              "blas1::dot_diff: size mismatch");
  return parallel_reduce(
      0, static_cast<std::int64_t>(n), kBlasGrain, 0.0,
      [&](std::int64_t lo, std::int64_t hi) {
        double s = 0.0;
        for (std::int64_t i = lo; i < hi; ++i) {
          const auto k = static_cast<std::size_t>(i);
          s += z[k] * (a[k] - b[k]);
        }
        return s;
      });
}

void xpby(std::span<const double> x, double beta, std::span<double> y) {
  CPX_REQUIRE(x.size() == y.size(), "blas1::xpby: size mismatch");
  parallel_for(0, static_cast<std::int64_t>(x.size()), kBlasGrain,
               [&](std::int64_t lo, std::int64_t hi) {
                 for (std::int64_t i = lo; i < hi; ++i) {
                   const auto k = static_cast<std::size_t>(i);
                   y[k] = x[k] + beta * y[k];
                 }
               });
}

}  // namespace cpx::support::blas1
