#include "support/blas1.hpp"

#include <cmath>
#include <cstdint>

#include "support/check.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/simd.hpp"

namespace cpx::support::blas1 {
namespace {

// Fixed reduction grain (docs/parallelism.md): the partial-sum
// decomposition — and therefore every bit of the result — depends on the
// vector length alone, never on the thread count. Within a chunk the
// kernels run on simd::pack lanes; reductions use the fixed-lane tree of
// simd::tree_reduce, so bits are also invariant to the active pack width.
constexpr std::int64_t kBlasGrain = 4096;

/// Roofline accounting (docs/observability.md): flop and streamed-byte
/// totals for one kernel invocation, fed to bench/roofline via the
/// metrics counter layer. Streaming model: every operand read or written
/// once, 8 bytes per double.
inline void account(std::int64_t flops, std::int64_t bytes) {
  if (metrics::enabled()) {
    metrics::counter_add("blas1/flops", flops);
    metrics::counter_add("blas1/bytes", bytes);
  }
}

}  // namespace

double sum(std::span<const double> a) {
  const auto n = static_cast<std::int64_t>(a.size());
  account(n, 8 * n);
  const double* pa = a.data();
  return simd::dispatch([&](auto width) {
    constexpr int W = decltype(width)::value;
    return parallel_reduce(
        0, n, kBlasGrain, 0.0, [&](std::int64_t lo, std::int64_t hi) {
          return simd::tree_reduce<W>(
              lo, hi,
              [&](std::int64_t i) { return simd::pack<W>::load(pa + i); },
              [&](std::int64_t i) { return pa[i]; });
        });
  });
}

double dot(std::span<const double> a, std::span<const double> b) {
  CPX_REQUIRE(a.size() == b.size(), "blas1::dot: size mismatch");
  const auto n = static_cast<std::int64_t>(a.size());
  account(2 * n, 16 * n);
  const double* pa = a.data();
  const double* pb = b.data();
  return simd::dispatch([&](auto width) {
    constexpr int W = decltype(width)::value;
    return parallel_reduce(
        0, n, kBlasGrain, 0.0, [&](std::int64_t lo, std::int64_t hi) {
          return simd::tree_reduce<W>(
              lo, hi,
              [&](std::int64_t i) {
                return simd::pack<W>::load(pa + i) *
                       simd::pack<W>::load(pb + i);
              },
              [&](std::int64_t i) { return pa[i] * pb[i]; });
        });
  });
}

double norm2_squared(std::span<const double> a) {
  const auto n = static_cast<std::int64_t>(a.size());
  account(2 * n, 8 * n);
  const double* pa = a.data();
  return simd::dispatch([&](auto width) {
    constexpr int W = decltype(width)::value;
    return parallel_reduce(
        0, n, kBlasGrain, 0.0, [&](std::int64_t lo, std::int64_t hi) {
          return simd::tree_reduce<W>(
              lo, hi,
              [&](std::int64_t i) {
                const auto v = simd::pack<W>::load(pa + i);
                return v * v;
              },
              [&](std::int64_t i) {
                const double v = pa[i];
                return v * v;
              });
        });
  });
}

double norm2(std::span<const double> a) { return std::sqrt(norm2_squared(a)); }

void axpy2(double alpha, std::span<const double> p,
           std::span<const double> ap, std::span<double> x,
           std::span<double> r) {
  const auto n = static_cast<std::int64_t>(x.size());
  CPX_REQUIRE(p.size() == x.size() && ap.size() == x.size() &&
                  r.size() == x.size(),
              "blas1::axpy2: size mismatch");
  account(4 * n, 48 * n);
  const double* pp = p.data();
  const double* pap = ap.data();
  double* px = x.data();
  double* pr = r.data();
  simd::dispatch([&](auto width) {
    constexpr int W = decltype(width)::value;
    parallel_for(0, n, kBlasGrain, [&](std::int64_t lo, std::int64_t hi) {
      const auto va = simd::pack<W>::broadcast(alpha);
      std::int64_t i = lo;
      for (; i + W <= hi; i += W) {
        (simd::pack<W>::load(px + i) + va * simd::pack<W>::load(pp + i))
            .store(px + i);
        (simd::pack<W>::load(pr + i) - va * simd::pack<W>::load(pap + i))
            .store(pr + i);
      }
      for (; i < hi; ++i) {
        px[i] += alpha * pp[i];
        pr[i] -= alpha * pap[i];
      }
    });
  });
}

double axpy2_norm2(double alpha, std::span<const double> p,
                   std::span<const double> ap, std::span<double> x,
                   std::span<double> r) {
  const auto n = static_cast<std::int64_t>(x.size());
  CPX_REQUIRE(p.size() == x.size() && ap.size() == x.size() &&
                  r.size() == x.size(),
              "blas1::axpy2_norm2: size mismatch");
  account(6 * n, 48 * n);
  const double* pp = p.data();
  const double* pap = ap.data();
  double* px = x.data();
  double* pr = r.data();
  return simd::dispatch([&](auto width) {
    constexpr int W = decltype(width)::value;
    return parallel_reduce(
        0, n, kBlasGrain, 0.0, [&](std::int64_t lo, std::int64_t hi) {
          const auto va = simd::pack<W>::broadcast(alpha);
          // tree_reduce terms carry the fused update as a side effect;
          // the x/r expressions match axpy2's exactly, so the fused and
          // unfused sequences stay bitwise identical (blas1_test).
          return simd::tree_reduce<W>(
              lo, hi,
              [&](std::int64_t i) {
                (simd::pack<W>::load(px + i) +
                 va * simd::pack<W>::load(pp + i))
                    .store(px + i);
                const auto rv = simd::pack<W>::load(pr + i) -
                                va * simd::pack<W>::load(pap + i);
                rv.store(pr + i);
                return rv * rv;
              },
              [&](std::int64_t i) {
                px[i] += alpha * pp[i];
                const double rv = pr[i] - alpha * pap[i];
                pr[i] = rv;
                return rv * rv;
              });
        });
  });
}

double dot_diff(std::span<const double> z, std::span<const double> a,
                std::span<const double> b) {
  const auto n = static_cast<std::int64_t>(z.size());
  CPX_REQUIRE(a.size() == z.size() && b.size() == z.size(),
              "blas1::dot_diff: size mismatch");
  account(3 * n, 24 * n);
  const double* pz = z.data();
  const double* pa = a.data();
  const double* pb = b.data();
  return simd::dispatch([&](auto width) {
    constexpr int W = decltype(width)::value;
    return parallel_reduce(
        0, n, kBlasGrain, 0.0, [&](std::int64_t lo, std::int64_t hi) {
          return simd::tree_reduce<W>(
              lo, hi,
              [&](std::int64_t i) {
                return simd::pack<W>::load(pz + i) *
                       (simd::pack<W>::load(pa + i) -
                        simd::pack<W>::load(pb + i));
              },
              [&](std::int64_t i) { return pz[i] * (pa[i] - pb[i]); });
        });
  });
}

void xpby(std::span<const double> x, double beta, std::span<double> y) {
  CPX_REQUIRE(x.size() == y.size(), "blas1::xpby: size mismatch");
  const auto n = static_cast<std::int64_t>(x.size());
  account(2 * n, 24 * n);
  const double* px = x.data();
  double* py = y.data();
  simd::dispatch([&](auto width) {
    constexpr int W = decltype(width)::value;
    parallel_for(0, n, kBlasGrain, [&](std::int64_t lo, std::int64_t hi) {
      const auto vb = simd::pack<W>::broadcast(beta);
      std::int64_t i = lo;
      for (; i + W <= hi; i += W) {
        (simd::pack<W>::load(px + i) + vb * simd::pack<W>::load(py + i))
            .store(py + i);
      }
      for (; i < hi; ++i) {
        py[i] = px[i] + beta * py[i];
      }
    });
  });
}

}  // namespace cpx::support::blas1
