#pragma once
// Shared-memory execution layer (docs/parallelism.md).
//
// A small dependency-free thread pool exposing a static-partitioned
// parallel_for. The work decomposition is deterministic: a range is split
// into chunks of `grain` iterations purely from (begin, end, grain),
// independent of the thread count, and chunks are handed to whichever
// worker is free. Kernels that write disjoint outputs per chunk are
// therefore bitwise identical at any thread count; reductions stay
// deterministic by accumulating per-chunk partials and combining them in
// chunk order (parallel_reduce does this for scalars).
//
// The pool is process-global and sized, in order of precedence, from
// set_max_threads(), the CPX_THREADS environment variable, and
// std::thread::hardware_concurrency(). With a width of 1 every call runs
// inline on the caller with zero synchronisation. Nested parallel calls
// from inside a chunk run inline on the calling worker's lane.

#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>

namespace cpx {
class Options;
}  // namespace cpx

namespace cpx::support {

/// Non-owning callable view (two raw pointers), used instead of
/// std::function on the dispatch path so that entering a parallel region
/// never heap-allocates — a requirement of the allocation-free solve path
/// (docs/parallelism.md). The referenced callable must outlive every
/// invocation; the parallel_* entry points block until all chunks are
/// done, so passing a stack lambda is safe.
template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  FunctionRef() = default;
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef>>>
  // NOLINTNEXTLINE(google-explicit-constructor): drop-in for std::function
  FunctionRef(F&& f)
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  explicit operator bool() const { return call_ != nullptr; }
  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_ = nullptr;
  R (*call_)(void*, Args...) = nullptr;
};

/// Number of execution lanes (worker threads + the calling thread).
int max_threads();

/// Resizes the pool to `n` >= 1 lanes. Must not be called from inside a
/// parallel region. n == 1 disables worker threads entirely.
void set_max_threads(int n);

/// Parses a thread-count string ("4"). Returns 0 for missing/invalid/
/// non-positive input (callers fall back to hardware concurrency).
int parse_thread_count(const char* text);

/// Applies --threads=N from parsed CLI options (fallback: the current
/// width, i.e. CPX_THREADS / hardware concurrency). Returns the width.
int configure_threads(const Options& options);

/// Number of chunks the deterministic decomposition produces for
/// [begin, end) with the given grain (grain is clamped to >= 1).
std::int64_t num_chunks(std::int64_t begin, std::int64_t end,
                        std::int64_t grain);

/// Half-open iteration range of chunk `chunk` of the decomposition.
std::pair<std::int64_t, std::int64_t> chunk_bounds(std::int64_t begin,
                                                   std::int64_t end,
                                                   std::int64_t grain,
                                                   std::int64_t chunk);

/// fn(chunk, chunk_begin, chunk_end, lane): called once per chunk, on any
/// lane in [0, max_threads()). A lane executes at most one chunk at a time,
/// so per-lane scratch needs no locking. Exceptions thrown by fn are
/// rethrown (first one wins) on the calling thread.
using ChunkFn = FunctionRef<void(std::int64_t chunk, std::int64_t begin,
                                 std::int64_t end, int lane)>;
void parallel_chunks(std::int64_t begin, std::int64_t end, std::int64_t grain,
                     ChunkFn fn);

/// fn(chunk_begin, chunk_end): chunk-id-free convenience wrapper for
/// kernels whose chunks write disjoint outputs.
using RangeFn = FunctionRef<void(std::int64_t begin, std::int64_t end)>;
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  RangeFn fn);

/// init + sum of fn(chunk_begin, chunk_end) over all chunks, combined in
/// chunk order — deterministic for a fixed grain at any thread count.
/// Partials live on the caller's stack up to 512 chunks (no allocation).
using ReduceFn = FunctionRef<double(std::int64_t begin, std::int64_t end)>;
double parallel_reduce(std::int64_t begin, std::int64_t end,
                       std::int64_t grain, double init, ReduceFn fn);

}  // namespace cpx::support
