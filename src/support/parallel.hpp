#pragma once
// Shared-memory execution layer (docs/parallelism.md).
//
// A small dependency-free thread pool exposing a static-partitioned
// parallel_for. The work decomposition is deterministic: a range is split
// into chunks of `grain` iterations purely from (begin, end, grain),
// independent of the thread count, and chunks are handed to whichever
// worker is free. Kernels that write disjoint outputs per chunk are
// therefore bitwise identical at any thread count; reductions stay
// deterministic by accumulating per-chunk partials and combining them in
// chunk order (parallel_reduce does this for scalars).
//
// The pool is process-global and sized, in order of precedence, from
// set_max_threads(), the CPX_THREADS environment variable, and
// std::thread::hardware_concurrency(). With a width of 1 every call runs
// inline on the caller with zero synchronisation. Nested parallel calls
// from inside a chunk run inline on the calling worker's lane.

#include <cstdint>
#include <functional>
#include <utility>

namespace cpx {
class Options;
}  // namespace cpx

namespace cpx::support {

/// Number of execution lanes (worker threads + the calling thread).
int max_threads();

/// Resizes the pool to `n` >= 1 lanes. Must not be called from inside a
/// parallel region. n == 1 disables worker threads entirely.
void set_max_threads(int n);

/// Parses a thread-count string ("4"). Returns 0 for missing/invalid/
/// non-positive input (callers fall back to hardware concurrency).
int parse_thread_count(const char* text);

/// Applies --threads=N from parsed CLI options (fallback: the current
/// width, i.e. CPX_THREADS / hardware concurrency). Returns the width.
int configure_threads(const Options& options);

/// Number of chunks the deterministic decomposition produces for
/// [begin, end) with the given grain (grain is clamped to >= 1).
std::int64_t num_chunks(std::int64_t begin, std::int64_t end,
                        std::int64_t grain);

/// Half-open iteration range of chunk `chunk` of the decomposition.
std::pair<std::int64_t, std::int64_t> chunk_bounds(std::int64_t begin,
                                                   std::int64_t end,
                                                   std::int64_t grain,
                                                   std::int64_t chunk);

/// fn(chunk, chunk_begin, chunk_end, lane): called once per chunk, on any
/// lane in [0, max_threads()). A lane executes at most one chunk at a time,
/// so per-lane scratch needs no locking. Exceptions thrown by fn are
/// rethrown (first one wins) on the calling thread.
using ChunkFn = std::function<void(std::int64_t chunk, std::int64_t begin,
                                   std::int64_t end, int lane)>;
void parallel_chunks(std::int64_t begin, std::int64_t end, std::int64_t grain,
                     const ChunkFn& fn);

/// fn(chunk_begin, chunk_end): chunk-id-free convenience wrapper for
/// kernels whose chunks write disjoint outputs.
using RangeFn = std::function<void(std::int64_t begin, std::int64_t end)>;
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const RangeFn& fn);

/// init + sum of fn(chunk_begin, chunk_end) over all chunks, combined in
/// chunk order — deterministic for a fixed grain at any thread count.
using ReduceFn = std::function<double(std::int64_t begin, std::int64_t end)>;
double parallel_reduce(std::int64_t begin, std::int64_t end,
                       std::int64_t grain, double init, const ReduceFn& fn);

}  // namespace cpx::support
