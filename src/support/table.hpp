#pragma once
// Aligned plain-text tables and CSV output for benchmark reports. Every
// bench binary prints the rows/series of the paper figure it reproduces
// through this module, so output formatting is uniform.

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace cpx {

/// A table cell: string, integer, or double (formatted with given precision).
using Cell = std::variant<std::string, long long, double>;

/// A simple column-aligned table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Sets the number of significant digits used for double cells (default 4).
  void set_precision(int digits);

  void add_row(std::vector<Cell> cells);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return headers_.size(); }

  /// Renders with aligned columns and a header separator.
  void print(std::ostream& os) const;

  /// Renders as CSV (RFC-4180-ish quoting for cells containing commas).
  void print_csv(std::ostream& os) const;

  /// Returns the formatted text (as print would emit).
  std::string to_string() const;

 private:
  std::string format_cell(const Cell& cell) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 4;
};

/// Prints a section banner used between benchmark sub-reports.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace cpx
