#include "support/options.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "support/check.hpp"

namespace cpx {

Options Options::parse(int argc, const char* const* argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      opts.positionals_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    CPX_REQUIRE(!arg.empty(), "Options: bare '--' is not a valid option");
    // Only --key=value and boolean --flag forms are supported; a separate
    // "--key value" form would be ambiguous with positional arguments.
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      opts.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      opts.values_[arg] = "true";
    }
  }
  return opts;
}

bool Options::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::string Options::get_string(const std::string& key,
                                const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

long long Options::get_int(const std::string& key, long long fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  const std::string& text = it->second;
  CPX_REQUIRE(!text.empty(),
              "Options: --" << key << " expects an integer, got an empty "
                               "value (did you mean --"
                            << key << "=<n>?)");
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  CPX_REQUIRE(end != text.c_str() && end != nullptr && *end == '\0',
              "Options: --" << key << " expects an integer, got '" << text
                            << "'");
  CPX_REQUIRE(errno != ERANGE,
              "Options: --" << key << " value '" << text
                            << "' is out of range for a 64-bit integer");
  return v;
}

double Options::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  const std::string& text = it->second;
  CPX_REQUIRE(!text.empty(),
              "Options: --" << key << " expects a number, got an empty "
                               "value (did you mean --"
                            << key << "=<x>?)");
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  CPX_REQUIRE(end != text.c_str() && end != nullptr && *end == '\0',
              "Options: --" << key << " expects a number, got '" << text
                            << "'");
  // ERANGE overflow saturates to +/-HUGE_VAL — reject it. ERANGE underflow
  // (denormal/zero results like 1e-400) is representable enough to accept.
  CPX_REQUIRE(errno != ERANGE || std::abs(v) != HUGE_VAL,
              "Options: --" << key << " value '" << text
                            << "' overflows a double");
  return v;
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") {
    return true;
  }
  if (v == "false" || v == "0" || v == "no" || v == "off") {
    return false;
  }
  CPX_REQUIRE(false, "Options: --" << key << " expects a boolean, got '" << v
                                   << "'");
  return fallback;  // unreachable
}

void Options::describe(const std::string& key, const std::string& help) {
  docs_.emplace_back(key, help);
}

std::string Options::help_text(const std::string& program) const {
  std::ostringstream oss;
  oss << "usage: " << program << " [options]\n";
  for (const auto& [key, help] : docs_) {
    oss << "  --" << key << "\n      " << help << "\n";
  }
  return oss.str();
}

}  // namespace cpx
