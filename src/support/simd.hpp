#pragma once
// Portable fixed-width SIMD shim for the hot kernel layers (blas1, sparse
// SpMV, AMG smoothers, SIMPIC push/deposit, coupler IDW). Dependency-free:
// pack<W> maps to GCC/Clang vector extensions where available and to a
// plain array + loops everywhere else, so the scalar fallback compiles on
// any C++20 compiler. No intrinsics headers, no -march requirements.
//
// Width model
// -----------
// All widths {1, 2, 4, 8} are always compiled; the active width is a
// runtime property (active_width()/set_width()) whose default comes from
// the CPX_SIMD configure knob (off -> 1, native -> 8, or an explicit
// width) and may be overridden by the CPX_SIMD environment variable. One
// binary therefore runs both the scalar and the vector paths — which is
// what lets tests/simd_test.cpp prove bitwise equality across widths and
// lets bench/roofline measure the scalar/vector speedup in-process.
//
// Determinism tiers (docs/parallelism.md, "Determinism tiers")
// ------------------------------------------------------------
// Tier "exact": elementwise kernels may vectorize freely inside the
// existing fixed-grain chunks — IEEE arithmetic is elementwise, so lane
// grouping cannot change bits. Reductions MUST go through tree_reduce /
// tree_combine below: partial sums are accumulated into kReduceLanes
// virtual lanes (element i of a chunk goes to lane (i - lo) % kReduceLanes
// in ascending order) and combined with one fixed binary tree. Because
// every supported width divides kReduceLanes, the per-lane addition
// chains and the final combine are IDENTICAL for every width — including
// width 1 — at every CPX_THREADS setting.
//
// Tier "relaxed": hsum() is a lane-order horizontal sum whose rounding
// depends on the pack width. It exists for throughput experiments in
// bench/ and must not appear in src/ kernels; the cpxcheck rule
// `simd-tier` enforces exactly that (allow(simd-tier) documents an
// exception).
//
// FP contract note: fma() and all kernel code spell multiply-add as
// `a * b + c` in both the pack and the scalar paths. The default build
// targets baseline x86-64 / no FMA ISA, so no contraction happens and
// scalar and pack paths round identically; a toolchain that contracts
// would contract both paths alike, and the width-matrix test would flag
// any divergence.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace cpx::support::simd {

/// Widest supported pack (doubles per pack) and the virtual-lane count of
/// the deterministic reduction tier. Equal on purpose: every supported
/// width divides kReduceLanes, so lane assignment is width-invariant.
inline constexpr int kMaxWidth = 8;
inline constexpr int kReduceLanes = 8;

/// Runtime-active pack width (1, 2, 4 or 8). Defaults to the configure-
/// time CPX_SIMD choice, overridable via the CPX_SIMD environment
/// variable; set_width() is for tests/benches and must be called outside
/// parallel regions.
int active_width();
void set_width(int width);

/// The configure-time default (CPX_SIMD_DEFAULT_WIDTH), before any
/// environment override.
int default_width();

#if defined(__GNUC__) || defined(__clang__)
#define CPX_SIMD_VECTOR_EXT 1
namespace detail {
template <int W>
struct VecOf;
template <>
struct VecOf<1> {
  typedef double type __attribute__((vector_size(8)));
};
template <>
struct VecOf<2> {
  typedef double type __attribute__((vector_size(16)));
};
template <>
struct VecOf<4> {
  typedef double type __attribute__((vector_size(32)));
};
template <>
struct VecOf<8> {
  typedef double type __attribute__((vector_size(64)));
};
}  // namespace detail
#endif

/// Fixed-width pack of W doubles. Loads/stores are memcpy-based, so they
/// are valid (and UBSan-clean) at ANY source alignment; aligned_vector
/// storage makes them fast, not correct.
template <int W>
struct pack {
  static_assert(W == 1 || W == 2 || W == 4 || W == 8,
                "pack width must be 1, 2, 4 or 8");

#if defined(CPX_SIMD_VECTOR_EXT)
  using vec = typename detail::VecOf<W>::type;
  vec v;
#else
  double v[W];
#endif

  static pack broadcast(double x) {
    pack r;
    for (int j = 0; j < W; ++j) {
      r.v[j] = x;
    }
    return r;
  }

  static pack zero() { return broadcast(0.0); }

  static pack load(const double* p) {
    pack r;
    std::memcpy(&r.v, p, sizeof(r.v));
    return r;
  }

  void store(double* p) const { std::memcpy(p, &v, sizeof(v)); }

  /// Masked load of the first n lanes (n < W); remaining lanes are 0.
  static pack load_partial(const double* p, int n) {
    pack r = zero();
    for (int j = 0; j < n && j < W; ++j) {
      r.v[j] = p[j];
    }
    return r;
  }

  /// Masked store of the first n lanes (n < W).
  void store_partial(double* p, int n) const {
    for (int j = 0; j < n && j < W; ++j) {
      p[j] = v[j];
    }
  }

  /// Indexed gather: lane j reads base[idx[j]].
  template <typename Index>
  static pack gather(const double* base, const Index* idx) {
    pack r;
    for (int j = 0; j < W; ++j) {
      r.v[j] = base[idx[j]];
    }
    return r;
  }

  double operator[](int lane) const { return v[lane]; }

  // Operands pass by const reference: over-aligned vector types passed
  // by value trip GCC's psABI notes on baseline targets.
#if defined(CPX_SIMD_VECTOR_EXT)
  friend pack operator+(const pack& a, const pack& b) {
    pack r;
    r.v = a.v + b.v;
    return r;
  }
  friend pack operator-(const pack& a, const pack& b) {
    pack r;
    r.v = a.v - b.v;
    return r;
  }
  friend pack operator*(const pack& a, const pack& b) {
    pack r;
    r.v = a.v * b.v;
    return r;
  }
  friend pack operator/(const pack& a, const pack& b) {
    pack r;
    r.v = a.v / b.v;
    return r;
  }
#else
  friend pack operator+(const pack& a, const pack& b) {
    pack r;
    for (int j = 0; j < W; ++j) {
      r.v[j] = a.v[j] + b.v[j];
    }
    return r;
  }
  friend pack operator-(const pack& a, const pack& b) {
    pack r;
    for (int j = 0; j < W; ++j) {
      r.v[j] = a.v[j] - b.v[j];
    }
    return r;
  }
  friend pack operator*(const pack& a, const pack& b) {
    pack r;
    for (int j = 0; j < W; ++j) {
      r.v[j] = a.v[j] * b.v[j];
    }
    return r;
  }
  friend pack operator/(const pack& a, const pack& b) {
    pack r;
    for (int j = 0; j < W; ++j) {
      r.v[j] = a.v[j] / b.v[j];
    }
    return r;
  }
#endif
};

/// Lane-wise |x|, bit-identical to std::abs applied per lane.
template <int W>
inline pack<W> abs(const pack<W>& a) {
  pack<W> r;
  for (int j = 0; j < W; ++j) {
    r.v[j] = std::abs(a.v[j]);
  }
  return r;
}

/// Multiply-add, deliberately spelled mul-then-add (see header note on
/// contraction) so the pack and scalar paths round identically.
template <int W>
inline pack<W> fma(const pack<W>& a, const pack<W>& b, const pack<W>& c) {
  return a * b + c;
}

/// RELAXED tier: lane-order horizontal sum. Rounding depends on W, so
/// calling this from a src/ kernel breaks the width-invariance contract —
/// the cpxcheck `simd-tier` rule flags it outside bench/tests.
template <int W>
inline double hsum(const pack<W>& a) {
  double s = a[0];
  for (int j = 1; j < W; ++j) {
    s += a[j];
  }
  return s;
}

/// The one fixed combine tree of the deterministic reduction tier:
/// ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)). Never reassociate.
inline double tree_combine(const double (&l)[kReduceLanes]) {
  return ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]));
}

/// Width-invariant chunk-local reduction over [lo, hi):
///
///   * element i contributes to virtual lane (i - lo) % kReduceLanes, in
///     ascending i order within its lane;
///   * lanes are combined with tree_combine.
///
/// pack_term(i) returns the W term values for elements [i, i+W) as a
/// pack (it may also perform elementwise side effects, e.g. the fused
/// axpy store); scalar_term(i) returns the term for one tail element and
/// must spell the SAME arithmetic expression. Because W divides
/// kReduceLanes, pack p's lane j IS virtual lane p*W+j and the per-lane
/// addition chains match the width-1 instantiation bit for bit.
template <int W, typename PackTerm, typename ScalarTerm>
inline double tree_reduce(std::int64_t lo, std::int64_t hi,
                          PackTerm&& pack_term, ScalarTerm&& scalar_term) {
  constexpr int kPacks = kReduceLanes / W;
  pack<W> acc[kPacks];
  for (int p = 0; p < kPacks; ++p) {
    acc[p] = pack<W>::zero();
  }
  std::int64_t i = lo;
  for (; i + kReduceLanes <= hi; i += kReduceLanes) {
    for (int p = 0; p < kPacks; ++p) {
      acc[p] = acc[p] + pack_term(i + p * W);
    }
  }
  double lanes[kReduceLanes];
  for (int p = 0; p < kPacks; ++p) {
    for (int j = 0; j < W; ++j) {
      lanes[p * W + j] = acc[p][j];
    }
  }
  for (; i < hi; ++i) {
    lanes[(i - lo) % kReduceLanes] += scalar_term(i);
  }
  return tree_combine(lanes);
}

/// Calls fn(std::integral_constant<int, W>{}) for the runtime-active
/// width. Kernels dispatch once per call, outside their parallel region.
template <typename Fn>
inline auto dispatch(Fn&& fn) {
  switch (active_width()) {
    case 8:
      return fn(std::integral_constant<int, 8>{});
    case 4:
      return fn(std::integral_constant<int, 4>{});
    case 2:
      return fn(std::integral_constant<int, 2>{});
    default:
      return fn(std::integral_constant<int, 1>{});
  }
}

}  // namespace cpx::support::simd
