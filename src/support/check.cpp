#include "support/check.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace cpx {

namespace detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
  std::ostringstream oss;
  oss << "CPX_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!message.empty()) {
    oss << " — " << message;
  }
  throw CheckError(oss.str());
}

}  // namespace detail

namespace check {
namespace {

// -1 = not yet resolved from the environment. Relaxed ordering suffices:
// the value is write-once (modulo the set_level test hook) and every
// transition is between valid tiers.
std::atomic<int> g_level{-1};

Level default_level() {
#ifdef CPX_DCHECK_ENABLED
  return Level::kDebug;
#else
  return Level::kAssert;
#endif
}

}  // namespace

Level parse_level(const char* text, Level fallback) {
  if (text == nullptr || *text == '\0') {
    return fallback;
  }
  if (std::strcmp(text, "0") == 0 || std::strcmp(text, "off") == 0 ||
      std::strcmp(text, "none") == 0) {
    return Level::kOff;
  }
  if (std::strcmp(text, "1") == 0 || std::strcmp(text, "assert") == 0) {
    return Level::kAssert;
  }
  if (std::strcmp(text, "2") == 0 || std::strcmp(text, "debug") == 0) {
    return Level::kDebug;
  }
  if (std::strcmp(text, "3") == 0 || std::strcmp(text, "paranoid") == 0) {
    return Level::kParanoid;
  }
  return fallback;
}

Level level() {
  int v = g_level.load(std::memory_order_relaxed);
  if (v < 0) {
    // One-time init read: racing first calls parse the same environment
    // and store the same value, so the benign write race is sound. (This
    // used to carry `cpx-lint: allow(mt-unsafe)` — a rule name that never
    // existed; the regex linter ignored unknown names silently, so the
    // suppression was dead text. cpxcheck's `allow-audit` rule now rejects
    // allows naming unknown rules.)
    v = static_cast<int>(
        parse_level(std::getenv("CPX_CHECK_LEVEL"), default_level()));
    g_level.store(v, std::memory_order_relaxed);
  }
  return static_cast<Level>(v);
}

void set_level(Level l) {
  g_level.store(static_cast<int>(l), std::memory_order_relaxed);
}

}  // namespace check
}  // namespace cpx
