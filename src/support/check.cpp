#include "support/check.hpp"

namespace cpx::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
  std::ostringstream oss;
  oss << "CPX_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!message.empty()) {
    oss << " — " << message;
  }
  throw CheckError(oss.str());
}

}  // namespace cpx::detail
