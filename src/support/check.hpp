#pragma once
// Error-handling primitives used across the library.
//
// CPX_CHECK is an always-on invariant check (never compiled out: this
// library is a simulator whose correctness matters more than the last few
// percent of speed). CPX_DCHECK is compiled out in NDEBUG builds and is
// meant for hot loops.

#include <sstream>
#include <stdexcept>
#include <string>

namespace cpx {

/// Exception thrown by CPX_CHECK / CPX_REQUIRE failures.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);
}  // namespace detail

}  // namespace cpx

/// Always-on invariant check. Throws cpx::CheckError on failure.
#define CPX_CHECK(expr)                                                  \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::cpx::detail::check_failed(#expr, __FILE__, __LINE__, "");        \
    }                                                                    \
  } while (false)

/// Always-on invariant check with a streamed message:
///   CPX_CHECK_MSG(a == b, "a=" << a << " b=" << b);
#define CPX_CHECK_MSG(expr, msg)                                         \
  do {                                                                   \
    if (!(expr)) {                                                       \
      std::ostringstream cpx_check_oss_;                                 \
      cpx_check_oss_ << msg;                                             \
      ::cpx::detail::check_failed(#expr, __FILE__, __LINE__,             \
                                  cpx_check_oss_.str());                 \
    }                                                                    \
  } while (false)

/// Precondition check on public API arguments.
#define CPX_REQUIRE(expr, msg) CPX_CHECK_MSG(expr, msg)

#ifdef NDEBUG
#define CPX_DCHECK(expr) \
  do {                   \
  } while (false)
#else
#define CPX_DCHECK(expr) CPX_CHECK(expr)
#endif
