#pragma once
// Tiered invariant-checking layer (docs/static_analysis.md).
//
// Three tiers, from always-on to opt-in:
//
//  * Tier 0 — CPX_ASSERT / CPX_CHECK / CPX_REQUIRE: cheap, always-on
//    precondition and invariant checks (never compiled out: this library is
//    a simulator whose correctness matters more than the last few percent
//    of speed). CPX_REQUIRE is the spelling used for public-API argument
//    checks, CPX_ASSERT/CPX_CHECK for internal invariants.
//
//  * Tier 1 — CPX_DCHECK: hot-loop assertions. Compiled in only when
//    CPX_DCHECK_ENABLED is defined (automatic in non-NDEBUG builds, forced
//    by -DCPX_DCHECKS=ON), and then still runtime-gated on
//    check::level() >= Level::kDebug. In release builds they compile to
//    nothing, which is what keeps the allocation-free solve path at its
//    measured speed (bench/amg_resetup, bench/threads_scaling).
//
//  * Tier 2 — deep validate() walkers: whole-structure invariant audits
//    (CsrMatrix::validate, AmgHierarchy::validate, mesh/partition, coupler
//    stencils, SIMPIC charge conservation, perfmodel allocations). These
//    are ordinary functions compiled into every build and gated at their
//    call sites on check::deep(), so CPX_CHECK_LEVEL=debug turns them on
//    even in a release binary. Debug builds default to Level::kDebug and
//    run them without any configuration.
//
// The runtime tier is selected once from the CPX_CHECK_LEVEL environment
// variable ("off"/0, "assert"/1, "debug"/2, "paranoid"/3) and cached; the
// per-call-site cost of a gated check is one relaxed atomic load.

#include <sstream>
#include <stdexcept>
#include <string>

namespace cpx {

/// Exception thrown by CPX_ASSERT / CPX_CHECK / CPX_REQUIRE failures.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);
}  // namespace detail

namespace check {

/// Runtime checking tier. Levels are cumulative: kDebug implies kAssert.
enum class Level : int {
  kOff = 0,       ///< gated checks disabled (tier-0 macros still fire)
  kAssert = 1,    ///< tier 0 only — the release default
  kDebug = 2,     ///< + CPX_DCHECK (where compiled in) and deep validators
  kParanoid = 3,  ///< + the most expensive audits (full Trusted-tag sweeps
                  ///<   on every kernel-built matrix, per-step SIMPIC walks)
};

/// Current tier: CPX_CHECK_LEVEL if set, else kDebug when CPX_DCHECK_ENABLED
/// builds compile tier-1 in, else kAssert. Cached after the first call.
Level level();

/// Overrides the tier (test hook; also lets a bench force kOff). Not
/// synchronised against concurrently running checks.
void set_level(Level level);

/// Parses a CPX_CHECK_LEVEL value; returns fallback for null/unknown text.
Level parse_level(const char* text, Level fallback);

inline bool at_least(Level l) {
  return static_cast<int>(level()) >= static_cast<int>(l);
}

/// True when deep validate() walkers should run at this call site.
inline bool deep() { return at_least(Level::kDebug); }

/// True for the most expensive opt-in audits.
inline bool paranoid() { return at_least(Level::kParanoid); }

}  // namespace check
}  // namespace cpx

/// Always-on invariant check. Throws cpx::CheckError on failure.
#define CPX_CHECK(expr)                                                  \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::cpx::detail::check_failed(#expr, __FILE__, __LINE__, "");        \
    }                                                                    \
  } while (false)

/// Always-on invariant check with a streamed message:
///   CPX_CHECK_MSG(a == b, "a=" << a << " b=" << b);
#define CPX_CHECK_MSG(expr, msg)                                         \
  do {                                                                   \
    if (!(expr)) {                                                       \
      std::ostringstream cpx_check_oss_;                                 \
      cpx_check_oss_ << msg;                                             \
      ::cpx::detail::check_failed(#expr, __FILE__, __LINE__,             \
                                  cpx_check_oss_.str());                 \
    }                                                                    \
  } while (false)

/// Tier-0 spelling for cheap internal invariants (alias of CPX_CHECK).
#define CPX_ASSERT(expr) CPX_CHECK(expr)
#define CPX_ASSERT_MSG(expr, msg) CPX_CHECK_MSG(expr, msg)

/// Precondition check on public API arguments.
#define CPX_REQUIRE(expr, msg) CPX_CHECK_MSG(expr, msg)

// Tier 1: compiled in automatically for debug builds, forced by the
// CPX_DCHECKS CMake option, and runtime-gated on Level::kDebug either way.
#if !defined(CPX_DCHECK_ENABLED) && !defined(NDEBUG)
#define CPX_DCHECK_ENABLED 1
#endif

#ifdef CPX_DCHECK_ENABLED
#define CPX_DCHECK(expr)                                                  \
  do {                                                                    \
    if (::cpx::check::at_least(::cpx::check::Level::kDebug) && !(expr)) { \
      ::cpx::detail::check_failed(#expr, __FILE__, __LINE__, "");         \
    }                                                                     \
  } while (false)
#define CPX_DCHECK_MSG(expr, msg)                                         \
  do {                                                                    \
    if (::cpx::check::at_least(::cpx::check::Level::kDebug) && !(expr)) { \
      std::ostringstream cpx_check_oss_;                                  \
      cpx_check_oss_ << msg;                                              \
      ::cpx::detail::check_failed(#expr, __FILE__, __LINE__,              \
                                  cpx_check_oss_.str());                  \
    }                                                                     \
  } while (false)
#else
#define CPX_DCHECK(expr) \
  do {                   \
  } while (false)
#define CPX_DCHECK_MSG(expr, msg) \
  do {                            \
  } while (false)
#endif
