#include "support/lsq.hpp"

#include <cmath>

#include "support/check.hpp"

namespace cpx {
namespace {

/// In-place Cholesky factorisation of a row-major n x n SPD matrix.
/// Returns false if a non-positive pivot is encountered.
bool cholesky(std::vector<double>& m, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    double pivot = m[k * n + k];
    for (std::size_t j = 0; j < k; ++j) {
      pivot -= m[k * n + j] * m[k * n + j];
    }
    if (pivot <= 0.0) {
      return false;
    }
    const double lkk = std::sqrt(pivot);
    m[k * n + k] = lkk;
    for (std::size_t i = k + 1; i < n; ++i) {
      double v = m[i * n + k];
      for (std::size_t j = 0; j < k; ++j) {
        v -= m[i * n + j] * m[k * n + j];
      }
      m[i * n + k] = v / lkk;
    }
  }
  return true;
}

/// Solves L L^T x = b given the Cholesky factor in the lower triangle.
std::vector<double> cholesky_solve(const std::vector<double>& l, std::size_t n,
                                   std::span<const double> b) {
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (std::size_t j = 0; j < i; ++j) {
      v -= l[i * n + j] * y[j];
    }
    y[i] = v / l[i * n + i];
  }
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double v = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) {
      v -= l[j * n + ii] * x[j];
    }
    x[ii] = v / l[ii * n + ii];
  }
  return x;
}

}  // namespace

std::vector<double> solve_normal_equations(std::span<const double> a,
                                           std::size_t rows, std::size_t cols,
                                           std::span<const double> b,
                                           double ridge) {
  CPX_REQUIRE(a.size() == rows * cols, "solve_normal_equations: bad A size");
  CPX_REQUIRE(b.size() == rows, "solve_normal_equations: bad b size");
  CPX_REQUIRE(rows >= cols, "solve_normal_equations: underdetermined system");

  // Form A^T A (cols x cols) and A^T b.
  std::vector<double> ata(cols * cols, 0.0);
  std::vector<double> atb(cols, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    const double* row = a.data() + r * cols;
    for (std::size_t i = 0; i < cols; ++i) {
      atb[i] += row[i] * b[r];
      for (std::size_t j = 0; j <= i; ++j) {
        ata[i * cols + j] += row[i] * row[j];
      }
    }
  }
  // Mirror to the upper triangle and add the ridge.
  double diag_scale = 0.0;
  for (std::size_t i = 0; i < cols; ++i) {
    diag_scale = std::max(diag_scale, ata[i * cols + i]);
  }
  const double lambda = ridge * std::max(diag_scale, 1.0);
  for (std::size_t i = 0; i < cols; ++i) {
    ata[i * cols + i] += lambda;
    for (std::size_t j = i + 1; j < cols; ++j) {
      ata[i * cols + j] = ata[j * cols + i];
    }
  }

  // Try increasing ridge levels before giving up; fitting noisy PE curves
  // with nearly collinear bases is routine, not exceptional.
  std::vector<double> work = ata;
  double boost = 1.0;
  for (int attempt = 0; attempt < 6; ++attempt) {
    if (cholesky(work, cols)) {
      return cholesky_solve(work, cols, atb);
    }
    boost *= 1e3;
    work = ata;
    for (std::size_t i = 0; i < cols; ++i) {
      work[i * cols + i] += lambda * boost;
    }
  }
  CPX_CHECK_MSG(false, "normal equations not SPD even with ridge boost");
}

std::vector<double> fit_basis(std::span<const double> xs,
                              std::span<const double> ys,
                              std::span<const BasisFn> basis,
                              std::span<const double> weights) {
  CPX_REQUIRE(xs.size() == ys.size(), "fit_basis: xs/ys size mismatch");
  CPX_REQUIRE(!basis.empty(), "fit_basis: empty basis");
  CPX_REQUIRE(weights.empty() || weights.size() == xs.size(),
              "fit_basis: weights size mismatch");
  const std::size_t m = xs.size();
  const std::size_t n = basis.size();
  std::vector<double> a(m * n);
  std::vector<double> b(m);
  for (std::size_t r = 0; r < m; ++r) {
    const double w = weights.empty() ? 1.0 : std::sqrt(weights[r]);
    for (std::size_t c = 0; c < n; ++c) {
      a[r * n + c] = w * basis[c](xs[r]);
    }
    b[r] = w * ys[r];
  }
  return solve_normal_equations(a, m, n, b);
}

double eval_basis(std::span<const double> coefs, std::span<const BasisFn> basis,
                  double x) {
  CPX_REQUIRE(coefs.size() == basis.size(), "eval_basis: size mismatch");
  double y = 0.0;
  for (std::size_t i = 0; i < coefs.size(); ++i) {
    y += coefs[i] * basis[i](x);
  }
  return y;
}

std::vector<double> fit_polynomial(std::span<const double> xs,
                                   std::span<const double> ys, int degree) {
  CPX_REQUIRE(degree >= 0, "fit_polynomial: negative degree");
  std::vector<BasisFn> basis;
  basis.reserve(static_cast<std::size_t>(degree) + 1);
  for (int d = 0; d <= degree; ++d) {
    basis.push_back([d](double x) { return std::pow(x, d); });
  }
  return fit_basis(xs, ys, basis);
}

double eval_polynomial(std::span<const double> coefs, double x) {
  double y = 0.0;
  for (std::size_t i = coefs.size(); i-- > 0;) {
    y = y * x + coefs[i];
  }
  return y;
}

}  // namespace cpx
