#pragma once
// 64-byte-aligned storage for the SIMD kernel layer (docs/parallelism.md,
// "Determinism tiers"). Hot SoA arrays — SIMPIC particle/field arrays,
// spray positions, CSR value arrays, blas1/PCG workspaces — are held in
// aligned_vector<T> so simd::pack loads start on cache-line boundaries and
// never straddle a line for any supported lane width. The kernels
// themselves stay correct for arbitrary alignment (pack loads are memcpy
// based), so aligned storage is a performance contract, not a correctness
// one: code handed a plain std::vector still works.

#include <cstddef>
#include <new>
#include <vector>

namespace cpx::support {

/// One cache line; also the widest pack (8 doubles) at natural alignment.
inline constexpr std::size_t kCacheLineBytes = 64;

/// Minimal allocator returning kCacheLineBytes-aligned blocks via the
/// C++17 aligned operator new. Stateless, so all instances are equal and
/// vectors with this allocator move in O(1) like plain std::vector.
template <typename T>
class AlignedAllocator {
 public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}  // NOLINT

  T* allocate(std::size_t n) {
    // The allocator layer is the one sanctioned home for raw allocation:
    // storage obtained here is always owned by a container.
    // cpx-lint: allow(naked-new)
    void* p = ::operator new(n * sizeof(T), std::align_val_t{kCacheLineBytes});
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept {
    // cpx-lint: allow(naked-new)
    ::operator delete(p, std::align_val_t{kCacheLineBytes});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U>&) const noexcept {
    return false;
  }
};

/// std::vector whose data() is 64-byte aligned.
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace cpx::support
