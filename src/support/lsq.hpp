#pragma once
// Dense linear least squares, used by the empirical performance model to
// fit runtime / parallel-efficiency curves (Section V of the paper: "fit a
// curve to the graph").
//
// The curve families we fit (e.g. T(p) = a/p + b + c*log2(p) + d*p) are
// linear in their coefficients, so ordinary least squares over a basis-
// function design matrix is exact. The normal equations are solved with a
// Cholesky factorisation plus a tiny Tikhonov ridge for rank safety.

#include <functional>
#include <span>
#include <vector>

namespace cpx {

/// Column-major dense symmetric-positive-definite solve helper.
/// Solves (A^T A + ridge I) x = A^T b where A is m x n (row-major rows).
/// Throws CheckError if the system is not SPD even with the ridge.
std::vector<double> solve_normal_equations(std::span<const double> a,
                                           std::size_t rows, std::size_t cols,
                                           std::span<const double> b,
                                           double ridge = 1e-12);

/// A single basis function phi_j(x).
using BasisFn = std::function<double(double)>;

/// Ordinary least squares fit of y ~= sum_j coef[j] * basis[j](x).
/// Optionally weighted (weights.size() == xs.size(), or empty for uniform).
std::vector<double> fit_basis(std::span<const double> xs,
                              std::span<const double> ys,
                              std::span<const BasisFn> basis,
                              std::span<const double> weights = {});

/// Evaluate a fitted basis expansion at x.
double eval_basis(std::span<const double> coefs, std::span<const BasisFn> basis,
                  double x);

/// Polynomial fit of the given degree; returns coefficients c0..cdeg
/// (lowest order first).
std::vector<double> fit_polynomial(std::span<const double> xs,
                                   std::span<const double> ys, int degree);

/// Evaluate a polynomial with coefficients lowest-order-first.
double eval_polynomial(std::span<const double> coefs, double x);

}  // namespace cpx
