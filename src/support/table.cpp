#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace cpx {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  CPX_REQUIRE(!headers_.empty(), "Table: need at least one column");
}

void Table::set_precision(int digits) {
  CPX_REQUIRE(digits > 0 && digits <= 17, "Table: bad precision");
  precision_ = digits;
}

void Table::add_row(std::vector<Cell> cells) {
  CPX_REQUIRE(cells.size() == headers_.size(),
              "Table: row width " << cells.size() << " != header width "
                                  << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::format_cell(const Cell& cell) const {
  std::ostringstream oss;
  if (const auto* s = std::get_if<std::string>(&cell)) {
    oss << *s;
  } else if (const auto* i = std::get_if<long long>(&cell)) {
    oss << *i;
  } else {
    oss << std::setprecision(precision_) << std::get<double>(cell);
  }
  return oss.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  std::vector<std::vector<std::string>> formatted;
  formatted.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(format_cell(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    formatted.push_back(std::move(cells));
  }
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::left
         << std::setw(static_cast<int>(widths[c])) << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : formatted) {
    emit(row);
  }
}

void Table::print_csv(std::ostream& os) const {
  const auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) {
      return s;
    }
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') {
        out += '"';
      }
      out += ch;
    }
    out += '"';
    return out;
  };
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "" : ",") << quote(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : ",") << quote(format_cell(row[c]));
    }
    os << '\n';
  }
}

std::string Table::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

void print_banner(std::ostream& os, const std::string& title) {
  os << '\n' << "=== " << title << " ===" << '\n';
}

}  // namespace cpx
