#pragma once
// Clang thread-safety annotation macros (docs/static_analysis.md).
//
// Thin spellings over clang's capability analysis attributes
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Under clang
// with -Wthread-safety the compiler proves, at build time, that every
// access to a CPX_GUARDED_BY member happens with its capability held and
// that lock/unlock pairs balance on all control paths — the static
// complement of the TSan job, which can only observe the interleavings a
// given run happens to produce. Under every other compiler the macros
// expand to nothing, so annotating costs nothing off clang.
//
// The annotated mutex/lock wrapper types the analysis needs (libstdc++'s
// std::mutex carries no capability attributes) live in
// support/mutex.hpp; this header is attribute spellings only so that
// interface headers can annotate without pulling in <mutex>.
//
// CI builds the tree with clang and -Werror=thread-safety (the
// `thread-safety` job), so a guarded member written without its lock, a
// missing CPX_REQUIRES on a *_locked helper, or an out-of-order
// acquisition against CPX_ACQUIRED_AFTER is a build failure, not a
// review comment.

#if defined(__clang__) && (!defined(SWIG))
#define CPX_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define CPX_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off clang
#endif

/// Marks a type as a capability (a mutex-like object the analysis tracks).
#define CPX_CAPABILITY(x) CPX_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII type whose lifetime acquires/releases a capability.
#define CPX_SCOPED_CAPABILITY CPX_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Data member readable/writable only with capability `x` held.
#define CPX_GUARDED_BY(x) CPX_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member whose *pointee* is guarded by capability `x`.
#define CPX_PT_GUARDED_BY(x) CPX_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function that must be called with the listed capabilities held.
#define CPX_REQUIRES(...) \
  CPX_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Function that acquires the listed capabilities (held on return).
#define CPX_ACQUIRE(...) \
  CPX_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function that releases the listed capabilities (no longer held on
/// return).
#define CPX_RELEASE(...) \
  CPX_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function that acquires the capability only when it returns `res`.
#define CPX_TRY_ACQUIRE(res, ...) \
  CPX_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(res, __VA_ARGS__))

/// Function that must be called with the listed capabilities NOT held
/// (deadlock guard for re-entrant call paths).
#define CPX_EXCLUDES(...) \
  CPX_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Declares a global lock order: this capability is acquired after the
/// listed ones. Locking against the declared order is a build failure.
#define CPX_ACQUIRED_AFTER(...) \
  CPX_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))
#define CPX_ACQUIRED_BEFORE(...) \
  CPX_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))

/// Function returning a reference to the given capability.
#define CPX_RETURN_CAPABILITY(x) \
  CPX_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch for protocols the analysis cannot express (e.g. a
/// release/acquire handoff through an atomic). Every use must carry a
/// comment naming the protocol that makes it sound.
#define CPX_NO_THREAD_SAFETY_ANALYSIS \
  CPX_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

/// Assertion that the capability is already held (runtime-established
/// facts the analysis cannot see, e.g. "single-threaded startup").
#define CPX_ASSERT_CAPABILITY(x) \
  CPX_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))
