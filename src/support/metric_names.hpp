#pragma once
// Registry of every metrics region and counter name used in src/.
//
// Call sites keep their string literals (a literal at the CPX_METRICS_SCOPE
// macro is what makes the timer overhead a pointer store), but every literal
// must also appear here: tools/lint_cpx.py cross-references the two sets and
// fails on a name used in src/ but missing from this header, or listed here
// but no longer used. That keeps dashboards and docs/observability.md from
// silently drifting when a kernel is renamed. Names under "test/" are
// reserved for tests and deliberately absent.
//
// Naming convention: "<subsystem>/<event>", lower_snake within each part.

namespace cpx::support::metric_names {

// --- Regions (CPX_METRICS_SCOPE / CPX_METRICS_SCOPE_COMM) ---
inline constexpr const char* kAmgCycle = "amg/cycle";
inline constexpr const char* kAmgPcg = "amg/pcg";
inline constexpr const char* kAmgResetup = "amg/resetup";
inline constexpr const char* kAmgSetup = "amg/setup";
inline constexpr const char* kAmgSmooth = "amg/smooth";
inline constexpr const char* kCouplerExchange = "coupler/exchange";
inline constexpr const char* kCouplerInterpolate = "coupler/interpolate";
inline constexpr const char* kCouplerMapBuild = "coupler/map_build";
inline constexpr const char* kCouplerRemap = "coupler/remap";
inline constexpr const char* kCouplerSearch = "coupler/search";
inline constexpr const char* kSimpicDeposit = "simpic/deposit";
inline constexpr const char* kSimpicField = "simpic/field";
inline constexpr const char* kSimpicPush = "simpic/push";
inline constexpr const char* kSparseSpgemmNumeric = "sparse/spgemm_numeric";
inline constexpr const char* kSparseSpgemmSpa = "sparse/spgemm_spa";
inline constexpr const char* kSparseSpgemmSymbolic = "sparse/spgemm_symbolic";
inline constexpr const char* kSparseSpgemmTwopass = "sparse/spgemm_twopass";
inline constexpr const char* kSparseSpmv = "sparse/spmv";
inline constexpr const char* kSparseTranspose = "sparse/transpose";
inline constexpr const char* kWorkflowDensityPhase = "workflow/density_phase";
inline constexpr const char* kWorkflowExchangePhase =
    "workflow/exchange_phase";
inline constexpr const char* kWorkflowPressurePhase =
    "workflow/pressure_phase";

// --- Counters (support::metrics::counter_add) ---
inline constexpr const char* kAmgPcgIterations = "amg/pcg_iterations";
// Roofline accounting (docs/observability.md): per-kernel flop and
// streamed-byte totals; arithmetic intensity = flops / bytes feeds
// perfmodel/roofline.hpp and bench/roofline.
inline constexpr const char* kAmgSmoothBytes = "amg/smooth_bytes";
inline constexpr const char* kAmgSmoothFlops = "amg/smooth_flops";
inline constexpr const char* kBlas1Bytes = "blas1/bytes";
inline constexpr const char* kBlas1Flops = "blas1/flops";
inline constexpr const char* kCommBytes = "comm/bytes";
inline constexpr const char* kCommMessages = "comm/messages";
inline constexpr const char* kCommOverlapHiddenNs = "comm/overlap_hidden_ns";
inline constexpr const char* kCommOverlapWindowNs = "comm/overlap_window_ns";
inline constexpr const char* kCommQueueWaitNs = "comm/queue_wait_ns";
inline constexpr const char* kAmgResetupCount = "amg/resetup";
inline constexpr const char* kAmgSolveCycles = "amg/solve_cycles";
inline constexpr const char* kCouplerExchangeBytes = "coupler/exchange_bytes";
inline constexpr const char* kCouplerInterpolateBytes =
    "coupler/interpolate_bytes";
inline constexpr const char* kCouplerInterpolateFlops =
    "coupler/interpolate_flops";
inline constexpr const char* kCouplerSearchQueries = "coupler/search_queries";
inline constexpr const char* kCouplerSearchVisited = "coupler/search_visited";
inline constexpr const char* kPoolQueueWaitNs = "pool/queue_wait_ns";
inline constexpr const char* kPoolTasks = "pool/tasks";
inline constexpr const char* kSimpicDepositBytes = "simpic/deposit_bytes";
inline constexpr const char* kSimpicDepositFlops = "simpic/deposit_flops";
inline constexpr const char* kSimpicParticlesPushed =
    "simpic/particles_pushed";
inline constexpr const char* kSimpicPushBytes = "simpic/push_bytes";
inline constexpr const char* kSimpicPushFlops = "simpic/push_flops";
inline constexpr const char* kSparseSpgemmFlops = "sparse/spgemm_flops";
inline constexpr const char* kSparseSpmvBytes = "sparse/spmv_bytes";
inline constexpr const char* kSparseSpmvFlops = "sparse/spmv_flops";
inline constexpr const char* kSparseSpmvNnz = "sparse/spmv_nnz";
inline constexpr const char* kSparseTransposeNnz = "sparse/transpose_nnz";
inline constexpr const char* kWorkflowExchanges = "workflow/exchanges";

}  // namespace cpx::support::metric_names
