// Runtime width state for the SIMD shim (support/simd.hpp). The default
// width is baked in at configure time (CPX_SIMD=off/native/<W> ->
// CPX_SIMD_DEFAULT_WIDTH) and can be overridden per process with the
// CPX_SIMD environment variable using the same spellings, mirroring how
// CPX_THREADS overrides the pool width (support/parallel.cpp).

#include "support/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#ifndef CPX_SIMD_DEFAULT_WIDTH
// Standalone (non-CMake) compilation: the scalar fallback always works.
#define CPX_SIMD_DEFAULT_WIDTH 1
#endif

namespace cpx::support::simd {
namespace {

constexpr bool valid_width(int w) {
  return w == 1 || w == 2 || w == 4 || w == 8;
}

/// Parses a CPX_SIMD spelling: "off" -> 1, "native" -> kMaxWidth, a
/// decimal supported width -> itself; anything else -> 0 (rejected).
int parse_width(const char* text) {
  if (text == nullptr || *text == '\0') {
    return 0;
  }
  if (std::strcmp(text, "off") == 0) {
    return 1;
  }
  if (std::strcmp(text, "native") == 0) {
    return kMaxWidth;
  }
  const int w = std::atoi(text);
  return valid_width(w) ? w : 0;
}

int initial_width() {
  if (const int w = parse_width(std::getenv("CPX_SIMD")); w != 0) {
    return w;
  }
  return CPX_SIMD_DEFAULT_WIDTH;
}

static_assert(valid_width(CPX_SIMD_DEFAULT_WIDTH),
              "CPX_SIMD_DEFAULT_WIDTH must be 1, 2, 4 or 8");

/// Relaxed atomic: set_width() happens outside parallel regions (tests,
/// bench setup), and the pool's task handoff orders it before any worker
/// reads it inside a kernel.
std::atomic<int> g_width{initial_width()};

}  // namespace

int active_width() { return g_width.load(std::memory_order_relaxed); }

void set_width(int width) {
  if (valid_width(width)) {
    g_width.store(width, std::memory_order_relaxed);
  }
}

int default_width() { return CPX_SIMD_DEFAULT_WIDTH; }

}  // namespace cpx::support::simd
