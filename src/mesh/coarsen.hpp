#pragma once
// Geometric agglomeration coarsening for MG-CFD's multigrid hierarchy.
// Greedy pairwise matching of adjacent cells halves the cell count per
// level (the classic volume-agglomeration approach for unstructured FV
// multigrid).

#include <vector>

#include "mesh/mesh.hpp"

namespace cpx::mesh {

/// Result of one coarsening step.
struct Coarsening {
  /// For each fine cell, the coarse aggregate it belongs to.
  std::vector<CellId> coarse_of;
  UnstructuredMesh coarse;

  std::int64_t num_coarse() const { return coarse.num_cells(); }
};

/// Greedy pairwise aggregation: visit cells in order, match each unmatched
/// cell with its heaviest-face unmatched neighbour (singletons allowed when
/// no neighbour is free). Deterministic.
Coarsening coarsen_pairwise(const UnstructuredMesh& fine);

/// Builds a hierarchy of `levels` meshes (levels[0] == fine) by repeated
/// pairwise aggregation; stops early if a level would not shrink.
struct Hierarchy {
  std::vector<UnstructuredMesh> meshes;
  /// coarse_of[l][c] maps a cell of level l to its aggregate in level l+1.
  std::vector<std::vector<CellId>> coarse_of;

  int num_levels() const { return static_cast<int>(meshes.size()); }
};
Hierarchy build_hierarchy(const UnstructuredMesh& fine, int levels);

}  // namespace cpx::mesh
