#include "mesh/coarsen.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "support/check.hpp"

namespace cpx::mesh {

Coarsening coarsen_pairwise(const UnstructuredMesh& fine) {
  const std::int64_t n = fine.num_cells();
  CPX_REQUIRE(n >= 1, "coarsen_pairwise: empty mesh");
  const auto& offsets = fine.adjacency_offsets();
  const auto& adj = fine.adjacency_cells();

  // Face weight lookup for picking the heaviest-face neighbour. Build a
  // per-cell list of (neighbor, area) from the edge list.
  std::vector<std::vector<std::pair<CellId, double>>> weights(
      static_cast<std::size_t>(n));
  for (const Edge& e : fine.edges()) {
    weights[static_cast<std::size_t>(e.a)].push_back({e.b, e.area});
    weights[static_cast<std::size_t>(e.b)].push_back({e.a, e.area});
  }

  Coarsening result;
  result.coarse_of.assign(static_cast<std::size_t>(n), -1);
  std::int64_t next_coarse = 0;
  for (CellId c = 0; c < n; ++c) {
    if (result.coarse_of[static_cast<std::size_t>(c)] >= 0) {
      continue;
    }
    // Pick the unmatched neighbour with the largest shared face.
    CellId best = -1;
    double best_area = -1.0;
    for (const auto& [nbr, area] : weights[static_cast<std::size_t>(c)]) {
      if (result.coarse_of[static_cast<std::size_t>(nbr)] < 0 &&
          area > best_area) {
        best = nbr;
        best_area = area;
      }
    }
    result.coarse_of[static_cast<std::size_t>(c)] = next_coarse;
    if (best >= 0) {
      result.coarse_of[static_cast<std::size_t>(best)] = next_coarse;
    }
    ++next_coarse;
  }
  (void)offsets;
  (void)adj;

  // Coarse centroids (volume-weighted) and volumes.
  std::vector<Vec3> centroids(static_cast<std::size_t>(next_coarse),
                              Vec3{0.0, 0.0, 0.0});
  std::vector<double> volumes(static_cast<std::size_t>(next_coarse), 0.0);
  for (CellId c = 0; c < n; ++c) {
    const auto agg = static_cast<std::size_t>(
        result.coarse_of[static_cast<std::size_t>(c)]);
    const double v = fine.volumes()[static_cast<std::size_t>(c)];
    const Vec3& p = fine.centroids()[static_cast<std::size_t>(c)];
    centroids[agg].x += v * p.x;
    centroids[agg].y += v * p.y;
    centroids[agg].z += v * p.z;
    volumes[agg] += v;
  }
  for (std::size_t a = 0; a < centroids.size(); ++a) {
    centroids[a].x /= volumes[a];
    centroids[a].y /= volumes[a];
    centroids[a].z /= volumes[a];
  }

  // Coarse edges: fine edges crossing aggregates, areas summed.
  std::map<std::pair<CellId, CellId>, Edge> coarse_edges;
  for (const Edge& e : fine.edges()) {
    const CellId ca = result.coarse_of[static_cast<std::size_t>(e.a)];
    const CellId cb = result.coarse_of[static_cast<std::size_t>(e.b)];
    if (ca == cb) {
      continue;
    }
    const auto key = std::minmax(ca, cb);
    auto it = coarse_edges.find(key);
    if (it == coarse_edges.end()) {
      coarse_edges.emplace(key,
                           Edge{key.first, key.second, e.area, e.normal});
    } else {
      it->second.area += e.area;
    }
  }
  std::vector<Edge> edges;
  edges.reserve(coarse_edges.size());
  for (auto& [key, e] : coarse_edges) {
    edges.push_back(e);
  }
  result.coarse = UnstructuredMesh(std::move(centroids), std::move(volumes),
                                   std::move(edges));
  return result;
}

Hierarchy build_hierarchy(const UnstructuredMesh& fine, int levels) {
  CPX_REQUIRE(levels >= 1, "build_hierarchy: need at least one level");
  Hierarchy h;
  h.meshes.push_back(fine);
  for (int l = 1; l < levels; ++l) {
    const UnstructuredMesh& current = h.meshes.back();
    if (current.num_cells() <= 2) {
      break;
    }
    Coarsening c = coarsen_pairwise(current);
    if (c.num_coarse() >= current.num_cells()) {
      break;  // no progress (disconnected dust); stop rather than loop
    }
    h.coarse_of.push_back(std::move(c.coarse_of));
    h.meshes.push_back(std::move(c.coarse));
  }
  return h;
}

}  // namespace cpx::mesh
