#pragma once
// Partition statistics, both measured (from a real mesh + partitioning) and
// analytic (from mesh size + part count alone).
//
// The analytic model is what lets the simulator run the paper's 8M-380M
// cell instances on thousands of ranks without instantiating the meshes:
// only owned-cell counts, halo sizes and neighbour counts enter the
// performance model. The analytic form is validated against measured RCB
// partitions at small scale (see tests/mesh_test.cpp).

#include <cstdint>

#include "mesh/partition.hpp"

namespace cpx::mesh {

struct PartitionStats {
  std::int64_t global_cells = 0;
  int num_parts = 0;
  double owned_mean = 0.0;
  double owned_max = 0.0;   ///< includes load imbalance
  double halo_mean = 0.0;   ///< ghost cells per part
  double halo_max = 0.0;
  double neighbors_mean = 0.0;

  /// Analytic 3-D model: owned = N/p, halo ~= surface_coeff *
  /// (1 - p^(-1/3)) * owned^(2/3) (boundary-corrected surface-to-volume),
  /// neighbours saturating at ~6 face contacts.
  /// `imbalance` is max/mean owned cells (RCB achieves ~1.0 by construction
  /// on cell counts; production graph partitioners sit near 1.03).
  static PartitionStats analytic(std::int64_t global_cells, int num_parts,
                                 double surface_coeff = 6.0,
                                 double imbalance = 1.03);

  /// Measured from an actual partitioning.
  static PartitionStats measure(const UnstructuredMesh& mesh,
                                const Partitioning& partitioning);
};

}  // namespace cpx::mesh
