#pragma once
// Unstructured mesh representation and synthetic generators.
//
// MG-CFD (and the production density solver it proxies) is an edge-based
// finite-volume code: unknowns live on cells, fluxes are accumulated over
// the edges of the dual graph. We therefore store a mesh as cells with 3-D
// centroids and volumes plus an undirected edge list with face areas.
//
// The paper's meshes (NASA Rotor37 rows, Rolls-Royce engine sectors,
// 8M-380M cells) are proprietary; we generate synthetic equivalents — a
// box mesh and an annulus-sector mesh with the aspect ratio of a blade-row
// passage — whose partition statistics (surface-to-volume of RCB parts,
// neighbour counts) drive the performance behaviour. Sizes too large to
// instantiate are handled analytically by PartitionStats (stats.hpp).

#include <array>
#include <cstdint>
#include <vector>

namespace cpx::mesh {

using CellId = std::int64_t;

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;
};

/// Undirected edge of the dual graph between two cells.
struct Edge {
  CellId a = 0;
  CellId b = 0;
  double area = 1.0;       ///< shared face area (flux weight)
  Vec3 normal{1.0, 0.0, 0.0};  ///< unit face normal (a -> b)
};

class UnstructuredMesh {
 public:
  UnstructuredMesh() = default;
  UnstructuredMesh(std::vector<Vec3> centroids, std::vector<double> volumes,
                   std::vector<Edge> edges);

  std::int64_t num_cells() const {
    return static_cast<std::int64_t>(centroids_.size());
  }
  std::int64_t num_edges() const {
    return static_cast<std::int64_t>(edges_.size());
  }

  const std::vector<Vec3>& centroids() const { return centroids_; }
  const std::vector<double>& volumes() const { return volumes_; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// CSR adjacency over cells (built lazily on first call, cached).
  const std::vector<std::int64_t>& adjacency_offsets() const;
  const std::vector<CellId>& adjacency_cells() const;

  /// Degree of a cell in the dual graph.
  int degree(CellId cell) const;

  /// Validates internal consistency (edge endpoints in range, positive
  /// volumes/areas). Throws CheckError on violation.
  void validate() const;

 private:
  void build_adjacency() const;

  std::vector<Vec3> centroids_;
  std::vector<double> volumes_;
  std::vector<Edge> edges_;

  mutable std::vector<std::int64_t> adj_offsets_;
  mutable std::vector<CellId> adj_cells_;
};

/// Structured box mesh of nx*ny*nz cells with 6-point stencil connectivity,
/// jittered centroids (deterministic from `seed`) so spatial partitioners
/// see realistic, non-degenerate coordinates. With `periodic` true, wrap
/// edges close every direction (a 3-torus: no boundary, so finite-volume
/// schemes conserve exactly).
UnstructuredMesh make_box_mesh(int nx, int ny, int nz, std::uint64_t seed = 42,
                               bool periodic = false);

/// Annulus-sector mesh: nr radial x ntheta azimuthal x nz axial cells
/// spanning [r_inner, r_outer] and a `sector_degrees` wedge — the shape of
/// a blade-row passage. Connectivity is the 6-point cylindrical stencil.
UnstructuredMesh make_annulus_mesh(int nr, int ntheta, int nz, double r_inner,
                                   double r_outer, double sector_degrees,
                                   double length, std::uint64_t seed = 42);

/// Chooses box dimensions whose product is close to `target_cells` with
/// roughly the given aspect ratios. Used to build "an N-cell mesh" without
/// hand-picking factors.
std::array<int, 3> box_dims_for(std::int64_t target_cells, double ax = 1.0,
                                double ay = 1.0, double az = 1.0);

}  // namespace cpx::mesh
