#include "mesh/partition.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "support/check.hpp"

namespace cpx::mesh {

std::int64_t Partitioning::owned_count(int part) const {
  CPX_REQUIRE(part >= 0 && part < num_parts, "owned_count: bad part " << part);
  return std::count(part_of.begin(), part_of.end(), part);
}

namespace {

/// Recursively assigns parts [part_begin, part_end) to the cells in
/// indices[lo, hi), bisecting along the widest coordinate axis.
void rcb_recurse(const std::vector<Vec3>& pts, std::vector<std::int64_t>& idx,
                 std::int64_t lo, std::int64_t hi, int part_begin,
                 int part_end, std::vector<int>& part_of) {
  const int parts = part_end - part_begin;
  if (parts == 1) {
    for (std::int64_t i = lo; i < hi; ++i) {
      part_of[static_cast<std::size_t>(idx[static_cast<std::size_t>(i)])] =
          part_begin;
    }
    return;
  }
  // Widest axis of the bounding box of this subset.
  Vec3 mn = pts[static_cast<std::size_t>(idx[static_cast<std::size_t>(lo)])];
  Vec3 mx = mn;
  for (std::int64_t i = lo; i < hi; ++i) {
    const Vec3& p =
        pts[static_cast<std::size_t>(idx[static_cast<std::size_t>(i)])];
    mn.x = std::min(mn.x, p.x);
    mn.y = std::min(mn.y, p.y);
    mn.z = std::min(mn.z, p.z);
    mx.x = std::max(mx.x, p.x);
    mx.y = std::max(mx.y, p.y);
    mx.z = std::max(mx.z, p.z);
  }
  const double dx = mx.x - mn.x;
  const double dy = mx.y - mn.y;
  const double dz = mx.z - mn.z;
  int axis = 0;
  if (dy >= dx && dy >= dz) {
    axis = 1;
  } else if (dz >= dx && dz >= dy) {
    axis = 2;
  }
  const auto key = [&](std::int64_t cell) {
    const Vec3& p = pts[static_cast<std::size_t>(cell)];
    return axis == 0 ? p.x : (axis == 1 ? p.y : p.z);
  };

  const int left_parts = parts / 2;
  const std::int64_t count = hi - lo;
  const std::int64_t left_count =
      count * left_parts / parts;  // proportional share
  auto begin = idx.begin() + lo;
  auto nth = idx.begin() + lo + left_count;
  auto end = idx.begin() + hi;
  std::nth_element(begin, nth, end, [&](std::int64_t a, std::int64_t b) {
    return key(a) < key(b);
  });
  rcb_recurse(pts, idx, lo, lo + left_count, part_begin,
              part_begin + left_parts, part_of);
  rcb_recurse(pts, idx, lo + left_count, hi, part_begin + left_parts,
              part_end, part_of);
}

}  // namespace

Partitioning partition_rcb(const UnstructuredMesh& mesh, int num_parts) {
  CPX_REQUIRE(num_parts >= 1, "partition_rcb: bad part count " << num_parts);
  CPX_REQUIRE(mesh.num_cells() >= num_parts,
              "partition_rcb: more parts (" << num_parts << ") than cells ("
                                            << mesh.num_cells() << ")");
  Partitioning p;
  p.num_parts = num_parts;
  p.part_of.assign(static_cast<std::size_t>(mesh.num_cells()), 0);
  if (num_parts == 1) {
    return p;
  }
  std::vector<std::int64_t> idx(static_cast<std::size_t>(mesh.num_cells()));
  std::iota(idx.begin(), idx.end(), 0);
  rcb_recurse(mesh.centroids(), idx, 0, mesh.num_cells(), 0, num_parts,
              p.part_of);
  return p;
}

std::int64_t LocalMesh::halo_send_cells() const {
  std::int64_t total = 0;
  for (const SendList& s : sends) {
    total += static_cast<std::int64_t>(s.cells.size());
  }
  return total;
}

std::vector<LocalMesh> extract_local_meshes(const UnstructuredMesh& mesh,
                                            const Partitioning& partitioning) {
  CPX_REQUIRE(partitioning.part_of.size() ==
                  static_cast<std::size_t>(mesh.num_cells()),
              "extract_local_meshes: partitioning size mismatch");
  const int p = partitioning.num_parts;
  std::vector<LocalMesh> locals(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i) {
    locals[static_cast<std::size_t>(i)].part = i;
  }

  // Owned cells per part (global ids in ascending order) and a global->local
  // index map.
  std::vector<std::int32_t> local_index(
      static_cast<std::size_t>(mesh.num_cells()), -1);
  for (CellId c = 0; c < mesh.num_cells(); ++c) {
    LocalMesh& lm =
        locals[static_cast<std::size_t>(partitioning.part_of
                                            [static_cast<std::size_t>(c)])];
    local_index[static_cast<std::size_t>(c)] =
        static_cast<std::int32_t>(lm.owned.size());
    lm.owned.push_back(c);
  }

  // Ghosts: cells adjacent across a cut, per part, discovered from edges.
  // ghost_index[part] maps global id -> local ghost slot.
  std::vector<std::unordered_map<CellId, std::int32_t>> ghost_index(
      static_cast<std::size_t>(p));
  // send_map[part][neighbor] -> set of owned local indices (kept sorted later)
  std::vector<std::unordered_map<int, std::vector<std::int32_t>>> send_map(
      static_cast<std::size_t>(p));

  const auto ghost_slot = [&](int part, CellId global) {
    auto& gi = ghost_index[static_cast<std::size_t>(part)];
    auto it = gi.find(global);
    if (it != gi.end()) {
      return it->second;
    }
    LocalMesh& lm = locals[static_cast<std::size_t>(part)];
    const auto slot = static_cast<std::int32_t>(lm.owned.size() +
                                                lm.ghosts.size());
    lm.ghosts.push_back(global);
    gi.emplace(global, slot);
    return slot;
  };

  for (const Edge& e : mesh.edges()) {
    const int pa = partitioning.part_of[static_cast<std::size_t>(e.a)];
    const int pb = partitioning.part_of[static_cast<std::size_t>(e.b)];
    const std::int32_t la = local_index[static_cast<std::size_t>(e.a)];
    const std::int32_t lb = local_index[static_cast<std::size_t>(e.b)];
    if (pa == pb) {
      locals[static_cast<std::size_t>(pa)].edges.push_back(
          {la, lb, e.area, e.normal});
      continue;
    }
    // Cut edge: each side gets the edge with the remote endpoint as ghost,
    // and must send its own endpoint to the other part.
    const std::int32_t ga = ghost_slot(pa, e.b);
    locals[static_cast<std::size_t>(pa)].edges.push_back(
        {la, ga, e.area, e.normal});
    send_map[static_cast<std::size_t>(pa)][pb].push_back(la);

    const std::int32_t gb = ghost_slot(pb, e.a);
    locals[static_cast<std::size_t>(pb)].edges.push_back(
        {gb, lb, e.area, e.normal});
    send_map[static_cast<std::size_t>(pb)][pa].push_back(lb);
  }

  // Finalise send lists (dedup) and recv counts.
  for (int part = 0; part < p; ++part) {
    LocalMesh& lm = locals[static_cast<std::size_t>(part)];
    for (auto& [neighbor, cells] : send_map[static_cast<std::size_t>(part)]) {
      std::sort(cells.begin(), cells.end());
      cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
      lm.sends.push_back({neighbor, cells});
    }
    std::sort(lm.sends.begin(), lm.sends.end(),
              [](const LocalMesh::SendList& a, const LocalMesh::SendList& b) {
                return a.neighbor < b.neighbor;
              });
  }
  // recv counts mirror the neighbour's send list sizes.
  for (int part = 0; part < p; ++part) {
    LocalMesh& lm = locals[static_cast<std::size_t>(part)];
    for (const auto& s : lm.sends) {
      const LocalMesh& other = locals[static_cast<std::size_t>(s.neighbor)];
      for (const auto& os : other.sends) {
        if (os.neighbor == part) {
          lm.recvs.push_back(
              {s.neighbor, static_cast<std::int64_t>(os.cells.size())});
          break;
        }
      }
    }
  }
  return locals;
}

HaloSummary summarize_halos(const UnstructuredMesh& mesh,
                            const Partitioning& partitioning) {
  const auto locals = extract_local_meshes(mesh, partitioning);
  HaloSummary s;
  s.min_owned = mesh.num_cells();
  double owned_sum = 0.0;
  double halo_sum = 0.0;
  double nbr_sum = 0.0;
  for (const LocalMesh& lm : locals) {
    s.max_owned = std::max(s.max_owned, lm.num_owned());
    s.min_owned = std::min(s.min_owned, lm.num_owned());
    owned_sum += static_cast<double>(lm.num_owned());
    halo_sum += static_cast<double>(lm.num_ghosts());
    s.max_halo = std::max(s.max_halo, static_cast<double>(lm.num_ghosts()));
    nbr_sum += lm.num_neighbors();
  }
  const double n = static_cast<double>(locals.size());
  s.mean_owned = owned_sum / n;
  s.mean_halo = halo_sum / n;
  s.mean_neighbors = nbr_sum / n;
  return s;
}

}  // namespace cpx::mesh
