#include "mesh/partition.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <unordered_map>

#include "support/check.hpp"

namespace cpx::mesh {

std::int64_t Partitioning::owned_count(int part) const {
  CPX_REQUIRE(part >= 0 && part < num_parts, "owned_count: bad part " << part);
  return std::count(part_of.begin(), part_of.end(), part);
}

namespace {

/// Recursively assigns parts [part_begin, part_end) to the cells in
/// indices[lo, hi), bisecting along the widest coordinate axis.
void rcb_recurse(const std::vector<Vec3>& pts, std::vector<std::int64_t>& idx,
                 std::int64_t lo, std::int64_t hi, int part_begin,
                 int part_end, std::vector<int>& part_of) {
  const int parts = part_end - part_begin;
  if (parts == 1) {
    for (std::int64_t i = lo; i < hi; ++i) {
      part_of[static_cast<std::size_t>(idx[static_cast<std::size_t>(i)])] =
          part_begin;
    }
    return;
  }
  // Widest axis of the bounding box of this subset.
  Vec3 mn = pts[static_cast<std::size_t>(idx[static_cast<std::size_t>(lo)])];
  Vec3 mx = mn;
  for (std::int64_t i = lo; i < hi; ++i) {
    const Vec3& p =
        pts[static_cast<std::size_t>(idx[static_cast<std::size_t>(i)])];
    mn.x = std::min(mn.x, p.x);
    mn.y = std::min(mn.y, p.y);
    mn.z = std::min(mn.z, p.z);
    mx.x = std::max(mx.x, p.x);
    mx.y = std::max(mx.y, p.y);
    mx.z = std::max(mx.z, p.z);
  }
  const double dx = mx.x - mn.x;
  const double dy = mx.y - mn.y;
  const double dz = mx.z - mn.z;
  int axis = 0;
  if (dy >= dx && dy >= dz) {
    axis = 1;
  } else if (dz >= dx && dz >= dy) {
    axis = 2;
  }
  const auto key = [&](std::int64_t cell) {
    const Vec3& p = pts[static_cast<std::size_t>(cell)];
    return axis == 0 ? p.x : (axis == 1 ? p.y : p.z);
  };

  const int left_parts = parts / 2;
  const std::int64_t count = hi - lo;
  const std::int64_t left_count =
      count * left_parts / parts;  // proportional share
  auto begin = idx.begin() + lo;
  auto nth = idx.begin() + lo + left_count;
  auto end = idx.begin() + hi;
  std::nth_element(begin, nth, end, [&](std::int64_t a, std::int64_t b) {
    return key(a) < key(b);
  });
  rcb_recurse(pts, idx, lo, lo + left_count, part_begin,
              part_begin + left_parts, part_of);
  rcb_recurse(pts, idx, lo + left_count, hi, part_begin + left_parts,
              part_end, part_of);
}

}  // namespace

Partitioning partition_rcb(const UnstructuredMesh& mesh, int num_parts) {
  CPX_REQUIRE(num_parts >= 1, "partition_rcb: bad part count " << num_parts);
  CPX_REQUIRE(mesh.num_cells() >= num_parts,
              "partition_rcb: more parts (" << num_parts << ") than cells ("
                                            << mesh.num_cells() << ")");
  Partitioning p;
  p.num_parts = num_parts;
  p.part_of.assign(static_cast<std::size_t>(mesh.num_cells()), 0);
  if (num_parts == 1) {
    return p;
  }
  std::vector<std::int64_t> idx(static_cast<std::size_t>(mesh.num_cells()));
  std::iota(idx.begin(), idx.end(), 0);
  rcb_recurse(mesh.centroids(), idx, 0, mesh.num_cells(), 0, num_parts,
              p.part_of);
  return p;
}

std::int64_t LocalMesh::halo_send_cells() const {
  std::int64_t total = 0;
  for (const SendList& s : sends) {
    total += static_cast<std::int64_t>(s.cells.size());
  }
  return total;
}

std::vector<LocalMesh> extract_local_meshes(const UnstructuredMesh& mesh,
                                            const Partitioning& partitioning) {
  CPX_REQUIRE(partitioning.part_of.size() ==
                  static_cast<std::size_t>(mesh.num_cells()),
              "extract_local_meshes: partitioning size mismatch");
  const int p = partitioning.num_parts;
  std::vector<LocalMesh> locals(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i) {
    locals[static_cast<std::size_t>(i)].part = i;
  }

  // Owned cells per part (global ids in ascending order) and a global->local
  // index map.
  std::vector<std::int32_t> local_index(
      static_cast<std::size_t>(mesh.num_cells()), -1);
  for (CellId c = 0; c < mesh.num_cells(); ++c) {
    LocalMesh& lm =
        locals[static_cast<std::size_t>(partitioning.part_of
                                            [static_cast<std::size_t>(c)])];
    local_index[static_cast<std::size_t>(c)] =
        static_cast<std::int32_t>(lm.owned.size());
    lm.owned.push_back(c);
  }

  // Ghosts: cells adjacent across a cut, per part, discovered from edges.
  // ghost_index[part] maps global id -> local ghost slot.
  std::vector<std::unordered_map<CellId, std::int32_t>> ghost_index(
      static_cast<std::size_t>(p));
  // send_map[part][neighbor] -> set of owned local indices (kept sorted
  // later). An ordered map: finalisation iterates it, and neighbour counts
  // are small, so deterministic order costs nothing (lint rule
  // `deterministic-kernels`, docs/static_analysis.md).
  std::vector<std::map<int, std::vector<std::int32_t>>> send_map(
      static_cast<std::size_t>(p));

  const auto ghost_slot = [&](int part, CellId global) {
    auto& gi = ghost_index[static_cast<std::size_t>(part)];
    auto it = gi.find(global);
    if (it != gi.end()) {
      return it->second;
    }
    LocalMesh& lm = locals[static_cast<std::size_t>(part)];
    const auto slot = static_cast<std::int32_t>(lm.owned.size() +
                                                lm.ghosts.size());
    lm.ghosts.push_back(global);
    gi.emplace(global, slot);
    return slot;
  };

  for (const Edge& e : mesh.edges()) {
    const int pa = partitioning.part_of[static_cast<std::size_t>(e.a)];
    const int pb = partitioning.part_of[static_cast<std::size_t>(e.b)];
    const std::int32_t la = local_index[static_cast<std::size_t>(e.a)];
    const std::int32_t lb = local_index[static_cast<std::size_t>(e.b)];
    if (pa == pb) {
      locals[static_cast<std::size_t>(pa)].edges.push_back(
          {la, lb, e.area, e.normal});
      continue;
    }
    // Cut edge: each side gets the edge with the remote endpoint as ghost,
    // and must send its own endpoint to the other part.
    const std::int32_t ga = ghost_slot(pa, e.b);
    locals[static_cast<std::size_t>(pa)].edges.push_back(
        {la, ga, e.area, e.normal});
    send_map[static_cast<std::size_t>(pa)][pb].push_back(la);

    const std::int32_t gb = ghost_slot(pb, e.a);
    locals[static_cast<std::size_t>(pb)].edges.push_back(
        {gb, lb, e.area, e.normal});
    send_map[static_cast<std::size_t>(pb)][pa].push_back(lb);
  }

  // Finalise send lists (dedup) and recv counts. send_map is ordered by
  // neighbour id, so the send lists come out sorted without a second pass.
  for (int part = 0; part < p; ++part) {
    LocalMesh& lm = locals[static_cast<std::size_t>(part)];
    for (auto& [neighbor, cells] : send_map[static_cast<std::size_t>(part)]) {
      std::sort(cells.begin(), cells.end());
      cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
      lm.sends.push_back({neighbor, cells});
    }
  }
  // recv counts mirror the neighbour's send list sizes.
  for (int part = 0; part < p; ++part) {
    LocalMesh& lm = locals[static_cast<std::size_t>(part)];
    for (const auto& s : lm.sends) {
      const LocalMesh& other = locals[static_cast<std::size_t>(s.neighbor)];
      for (const auto& os : other.sends) {
        if (os.neighbor == part) {
          lm.recvs.push_back(
              {s.neighbor, static_cast<std::int64_t>(os.cells.size())});
          break;
        }
      }
    }
  }

  if (check::deep()) {
    validate_local_meshes(mesh, partitioning, locals);
  }
  return locals;
}

CellSplit split_interior_boundary(const LocalMesh& lm) {
  const auto num_owned = lm.num_owned();
  std::vector<std::int8_t> touches_ghost(static_cast<std::size_t>(num_owned),
                                         0);
  for (const LocalMesh::LocalEdge& e : lm.edges) {
    if (e.a < num_owned && e.b >= num_owned) {
      touches_ghost[static_cast<std::size_t>(e.a)] = 1;
    }
    if (e.b < num_owned && e.a >= num_owned) {
      touches_ghost[static_cast<std::size_t>(e.b)] = 1;
    }
  }
  CellSplit split;
  for (std::int64_t c = 0; c < num_owned; ++c) {
    auto& list = touches_ghost[static_cast<std::size_t>(c)] != 0
                     ? split.boundary
                     : split.interior;
    list.push_back(static_cast<std::int32_t>(c));
  }
  return split;
}

comm::ExchangePlan build_halo_plan(std::span<const LocalMesh> locals) {
  // Global id -> local ghost slot, per part.
  std::vector<std::unordered_map<CellId, std::int32_t>> ghost_slot(
      locals.size());
  for (std::size_t part = 0; part < locals.size(); ++part) {
    const LocalMesh& lm = locals[part];
    for (std::size_t j = 0; j < lm.ghosts.size(); ++j) {
      ghost_slot[part].emplace(
          lm.ghosts[j],
          static_cast<std::int32_t>(lm.owned.size() + j));
    }
  }

  comm::ExchangePlan plan;
  std::vector<std::int32_t> send_indices;
  std::vector<std::int32_t> recv_indices;
  for (const LocalMesh& lm : locals) {
    for (const LocalMesh::SendList& s : lm.sends) {
      CPX_CHECK_MSG(s.neighbor >= 0 &&
                        static_cast<std::size_t>(s.neighbor) < locals.size(),
                    "halo plan: part " << lm.part
                                       << " sends to invalid neighbour "
                                       << s.neighbor);
      const auto& slots = ghost_slot[static_cast<std::size_t>(s.neighbor)];
      send_indices.assign(s.cells.begin(), s.cells.end());
      recv_indices.clear();
      recv_indices.reserve(s.cells.size());
      for (const std::int32_t local : s.cells) {
        CPX_CHECK_MSG(local >= 0 && static_cast<std::size_t>(local) <
                                        lm.owned.size(),
                      "halo plan: part " << lm.part
                                         << " send list references local "
                                         << local
                                         << " outside its owned range");
        const CellId global = lm.owned[static_cast<std::size_t>(local)];
        const auto it = slots.find(global);
        CPX_CHECK_MSG(it != slots.end(),
                      "halo plan: cell " << global << " sent by part "
                                         << lm.part << " has no ghost slot "
                                         << "on part " << s.neighbor
                                         << " (halo asymmetry)");
        recv_indices.push_back(it->second);
      }
      plan.add_channel(lm.part, s.neighbor, send_indices, recv_indices);
    }
  }
  return plan;
}

void validate_partitioning(const UnstructuredMesh& mesh,
                           const Partitioning& partitioning) {
  CPX_CHECK_MSG(partitioning.num_parts >= 1, "partitioning has no parts");
  CPX_CHECK_MSG(partitioning.part_of.size() ==
                    static_cast<std::size_t>(mesh.num_cells()),
                "part_of size " << partitioning.part_of.size()
                                << " != cell count " << mesh.num_cells());
  for (std::size_t c = 0; c < partitioning.part_of.size(); ++c) {
    const int part = partitioning.part_of[c];
    CPX_CHECK_MSG(part >= 0 && part < partitioning.num_parts,
                  "cell " << c << " assigned to invalid part " << part);
  }
}

void validate_local_meshes(const UnstructuredMesh& mesh,
                           const Partitioning& partitioning,
                           std::span<const LocalMesh> locals) {
  validate_partitioning(mesh, partitioning);
  CPX_CHECK_MSG(locals.size() ==
                    static_cast<std::size_t>(partitioning.num_parts),
                "local mesh count " << locals.size() << " != parts "
                                    << partitioning.num_parts);

  // Every cell owned exactly once, by the part the partitioning says.
  std::vector<std::int8_t> seen(static_cast<std::size_t>(mesh.num_cells()),
                                0);
  for (const LocalMesh& lm : locals) {
    for (const CellId c : lm.owned) {
      CPX_CHECK_MSG(c >= 0 && c < mesh.num_cells(),
                    "part " << lm.part << " owns out-of-range cell " << c);
      CPX_CHECK_MSG(partitioning.part_of[static_cast<std::size_t>(c)] ==
                        lm.part,
                    "cell " << c << " owned by part " << lm.part
                            << " but assigned to part "
                            << partitioning.part_of[static_cast<std::size_t>(
                                   c)]);
      CPX_CHECK_MSG(seen[static_cast<std::size_t>(c)] == 0,
                    "cell " << c << " owned by more than one part");
      seen[static_cast<std::size_t>(c)] = 1;
    }
  }
  for (std::size_t c = 0; c < seen.size(); ++c) {
    CPX_CHECK_MSG(seen[c] != 0, "cell " << c << " owned by no part");
  }

  // Transport-level halo invariants — send-list locals in range, halo
  // send/recv symmetry, and exactly-once coverage of every ghost slot —
  // are properties of the exchange schedule, so build it and delegate to
  // the comm-layer validator (the plan builder itself rejects a sent cell
  // with no ghost slot on the receiver).
  const comm::ExchangePlan plan = build_halo_plan(locals);
  std::vector<std::int64_t> extents(locals.size(), 0);
  std::vector<std::int64_t> required(locals.size(), 0);
  for (std::size_t i = 0; i < locals.size(); ++i) {
    extents[i] = locals[i].num_owned() + locals[i].num_ghosts();
    required[i] = locals[i].num_owned();
  }
  comm::validate_plan(plan, {extents, extents, required});

  for (const LocalMesh& lm : locals) {
    // Ghosts reference real cells owned by another part.
    for (const CellId g : lm.ghosts) {
      CPX_CHECK_MSG(g >= 0 && g < mesh.num_cells(),
                    "part " << lm.part << " has out-of-range ghost " << g);
      const int owner = partitioning.part_of[static_cast<std::size_t>(g)];
      CPX_CHECK_MSG(owner != lm.part,
                    "part " << lm.part << " lists owned cell " << g
                            << " as a ghost");
    }
    // Receive counts mirror the neighbour's send lists and cover exactly
    // the ghost ring.
    std::int64_t recv_total = 0;
    for (const LocalMesh::RecvCount& rc : lm.recvs) {
      CPX_CHECK_MSG(rc.neighbor >= 0 && rc.neighbor < partitioning.num_parts,
                    "part " << lm.part << " receives from invalid neighbour "
                            << rc.neighbor);
      std::int64_t expected = 0;
      for (const LocalMesh::SendList& os :
           locals[static_cast<std::size_t>(rc.neighbor)].sends) {
        if (os.neighbor == lm.part) {
          expected = static_cast<std::int64_t>(os.cells.size());
          break;
        }
      }
      CPX_CHECK_MSG(rc.count == expected,
                    "part " << lm.part << " expects " << rc.count
                            << " ghosts from " << rc.neighbor << " but "
                            << rc.neighbor << " sends " << expected);
      recv_total += rc.count;
    }
    CPX_CHECK_MSG(recv_total == lm.num_ghosts(),
                  "part " << lm.part << " receive total " << recv_total
                          << " != ghost count " << lm.num_ghosts());
    // Local edges: endpoints in range, no self-edges, at least one owned
    // endpoint (pure-ghost edges belong to other parts).
    const auto local_cells =
        static_cast<std::int32_t>(lm.num_owned() + lm.num_ghosts());
    for (const LocalMesh::LocalEdge& e : lm.edges) {
      CPX_CHECK_MSG(e.a >= 0 && e.a < local_cells && e.b >= 0 &&
                        e.b < local_cells && e.a != e.b,
                    "part " << lm.part << " local edge " << e.a << "-" << e.b
                            << " out of range");
      CPX_CHECK_MSG(e.a < lm.num_owned() || e.b < lm.num_owned(),
                    "part " << lm.part << " edge " << e.a << "-" << e.b
                            << " connects two ghosts");
    }
  }
}

HaloSummary summarize_halos(const UnstructuredMesh& mesh,
                            const Partitioning& partitioning) {
  const auto locals = extract_local_meshes(mesh, partitioning);
  HaloSummary s;
  s.min_owned = mesh.num_cells();
  double owned_sum = 0.0;
  double halo_sum = 0.0;
  double nbr_sum = 0.0;
  for (const LocalMesh& lm : locals) {
    s.max_owned = std::max(s.max_owned, lm.num_owned());
    s.min_owned = std::min(s.min_owned, lm.num_owned());
    owned_sum += static_cast<double>(lm.num_owned());
    halo_sum += static_cast<double>(lm.num_ghosts());
    s.max_halo = std::max(s.max_halo, static_cast<double>(lm.num_ghosts()));
    nbr_sum += lm.num_neighbors();
  }
  const double n = static_cast<double>(locals.size());
  s.mean_owned = owned_sum / n;
  s.mean_halo = halo_sum / n;
  s.mean_neighbors = nbr_sum / n;
  return s;
}

}  // namespace cpx::mesh
