#include "mesh/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace cpx::mesh {

PartitionStats PartitionStats::analytic(std::int64_t global_cells,
                                        int num_parts, double surface_coeff,
                                        double imbalance) {
  CPX_REQUIRE(global_cells >= 1 && num_parts >= 1,
              "PartitionStats::analytic: bad inputs");
  PartitionStats s;
  s.global_cells = global_cells;
  s.num_parts = num_parts;
  s.owned_mean = static_cast<double>(global_cells) / num_parts;
  s.owned_max = s.owned_mean * imbalance;
  if (num_parts == 1) {
    return s;  // halo/neighbours stay zero
  }
  // A compact 3-D part of V cells has ~surface_coeff * V^(2/3) faces, but
  // faces on the domain boundary have no neighbour: with p parts tiling the
  // domain, a fraction ~(1 - p^(-1/3)) of each part's surface is internal.
  // The ghost ring is one cell deep, and a part cannot have more ghosts
  // than there are remote cells.
  const double internal_fraction =
      1.0 - std::pow(static_cast<double>(num_parts), -1.0 / 3.0);
  const double surface = surface_coeff * internal_fraction *
                         std::pow(s.owned_mean, 2.0 / 3.0);
  const double remote =
      static_cast<double>(global_cells) - s.owned_mean;
  s.halo_mean = std::min(surface, remote);
  s.halo_max = std::min(surface * 1.3, remote);
  // Face neighbours of a 3-D tiling approach 6; small part counts see
  // fewer, very fragmented partitions see a few corner contacts more.
  s.neighbors_mean = std::min(static_cast<double>(num_parts - 1), 6.0);
  return s;
}

PartitionStats PartitionStats::measure(const UnstructuredMesh& mesh,
                                       const Partitioning& partitioning) {
  const HaloSummary h = summarize_halos(mesh, partitioning);
  PartitionStats s;
  s.global_cells = mesh.num_cells();
  s.num_parts = partitioning.num_parts;
  s.owned_mean = h.mean_owned;
  s.owned_max = static_cast<double>(h.max_owned);
  s.halo_mean = h.mean_halo;
  s.halo_max = h.max_halo;
  s.neighbors_mean = h.mean_neighbors;
  return s;
}

}  // namespace cpx::mesh
