#pragma once
// Geometric partitioning (recursive coordinate bisection) and halo
// construction. Production codes use ParMETIS-class partitioners; RCB over
// jittered centroids gives parts with the same statistical character
// (balanced sizes, compact shapes, surface-to-volume halo growth), which
// is what the performance behaviour depends on.

#include <cstdint>
#include <span>
#include <vector>

#include "comm/exchange_plan.hpp"
#include "mesh/mesh.hpp"

namespace cpx::mesh {

struct Partitioning {
  int num_parts = 0;
  std::vector<int> part_of;  ///< per global cell

  std::int64_t owned_count(int part) const;
};

/// Recursive coordinate bisection on cell centroids. Supports arbitrary
/// (non-power-of-two) part counts by proportional splits.
Partitioning partition_rcb(const UnstructuredMesh& mesh, int num_parts);

/// A part's view of the mesh: owned cells, ghost ring, local edges, and the
/// communication lists to exchange ghost data with neighbouring parts.
/// Local cell indices: [0, num_owned) are owned, [num_owned, num_owned +
/// num_ghosts) are ghosts, in the order of `ghosts`.
struct LocalMesh {
  int part = 0;
  std::vector<CellId> owned;   ///< global ids of owned cells
  std::vector<CellId> ghosts;  ///< global ids of ghost cells

  /// Edges with at least one owned endpoint, in local indices. Edges
  /// between two owned cells appear once; cut edges appear in both parts.
  struct LocalEdge {
    std::int32_t a = 0;
    std::int32_t b = 0;
    double area = 1.0;
    Vec3 normal{1.0, 0.0, 0.0};
  };
  std::vector<LocalEdge> edges;

  /// Per neighbouring part: local owned indices whose values must be sent.
  struct SendList {
    int neighbor = 0;
    std::vector<std::int32_t> cells;
  };
  std::vector<SendList> sends;

  /// Per neighbouring part: number of ghost cells received from it.
  struct RecvCount {
    int neighbor = 0;
    std::int64_t count = 0;
  };
  std::vector<RecvCount> recvs;

  std::int64_t num_owned() const {
    return static_cast<std::int64_t>(owned.size());
  }
  std::int64_t num_ghosts() const {
    return static_cast<std::int64_t>(ghosts.size());
  }
  std::int64_t halo_send_cells() const;
  int num_neighbors() const { return static_cast<int>(sends.size()); }
};

/// Extracts the local view of every part in one sweep.
std::vector<LocalMesh> extract_local_meshes(const UnstructuredMesh& mesh,
                                            const Partitioning& partitioning);

/// Owned-cell partition for split-phase halo overlap: `boundary` holds
/// every owned cell with an incident local edge whose other endpoint is a
/// ghost, `interior` the rest. Both lists ascend, so iterating interior
/// then boundary visits each owned cell exactly once and any per-cell
/// (gather-form) kernel is order-independent between the two phasings.
struct CellSplit {
  std::vector<std::int32_t> interior;
  std::vector<std::int32_t> boundary;
};
CellSplit split_interior_boundary(const LocalMesh& lm);

/// Builds the halo-exchange schedule of a set of local meshes: one comm
/// channel per directed neighbour pair, send indices the owner's send-list
/// cells, receive indices the matching ghost slots on the destination
/// (local indices into the owned+ghost cell array). Channels are emitted
/// in (part, send-list) order — the deterministic order the per-site halo
/// loops used before the comm refactor. The caller finalizes the plan
/// with its per-cell element size. Throws CheckError if a sent cell has
/// no ghost slot on the receiver (halo asymmetry).
comm::ExchangePlan build_halo_plan(std::span<const LocalMesh> locals);

/// Deep validator (tier 2, support/check.hpp): partition shape and every
/// part id in range. Throws CheckError on violation.
void validate_partitioning(const UnstructuredMesh& mesh,
                           const Partitioning& partitioning);

/// Deep validator for extracted local meshes: every cell owned by exactly
/// one part (and by the part the partitioning assigns it to), halo
/// symmetry — each ghost of part p is owned by some other part q, appears
/// in q's send list to p, and p's receive count from q matches q's send
/// list — and local edge endpoints in range with at least one owned end.
/// Runs automatically at the end of extract_local_meshes when
/// check::deep() is on. Throws CheckError on violation.
void validate_local_meshes(const UnstructuredMesh& mesh,
                           const Partitioning& partitioning,
                           std::span<const LocalMesh> locals);

/// Aggregate halo statistics of a partitioning (no local meshes built).
struct HaloSummary {
  std::int64_t max_owned = 0;
  std::int64_t min_owned = 0;
  double mean_owned = 0.0;
  double mean_halo = 0.0;  ///< mean ghost cells per part
  double max_halo = 0.0;
  double mean_neighbors = 0.0;
};
HaloSummary summarize_halos(const UnstructuredMesh& mesh,
                            const Partitioning& partitioning);

}  // namespace cpx::mesh
