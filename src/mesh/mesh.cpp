#include "mesh/mesh.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace cpx::mesh {

UnstructuredMesh::UnstructuredMesh(std::vector<Vec3> centroids,
                                   std::vector<double> volumes,
                                   std::vector<Edge> edges)
    : centroids_(std::move(centroids)),
      volumes_(std::move(volumes)),
      edges_(std::move(edges)) {
  CPX_REQUIRE(centroids_.size() == volumes_.size(),
              "UnstructuredMesh: centroid/volume count mismatch");
  validate();
}

void UnstructuredMesh::validate() const {
  const auto n = num_cells();
  for (const Edge& e : edges_) {
    CPX_CHECK_MSG(e.a >= 0 && e.a < n && e.b >= 0 && e.b < n,
                  "edge endpoint out of range: " << e.a << "-" << e.b);
    CPX_CHECK_MSG(e.a != e.b, "self-edge at cell " << e.a);
    CPX_CHECK_MSG(e.area > 0.0, "non-positive face area");
  }
  for (double v : volumes_) {
    CPX_CHECK_MSG(v > 0.0, "non-positive cell volume");
  }
}

void UnstructuredMesh::build_adjacency() const {
  const auto n = static_cast<std::size_t>(num_cells());
  adj_offsets_.assign(n + 1, 0);
  for (const Edge& e : edges_) {
    ++adj_offsets_[static_cast<std::size_t>(e.a) + 1];
    ++adj_offsets_[static_cast<std::size_t>(e.b) + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) {
    adj_offsets_[i] += adj_offsets_[i - 1];
  }
  adj_cells_.assign(static_cast<std::size_t>(adj_offsets_[n]), 0);
  std::vector<std::int64_t> cursor(adj_offsets_.begin(),
                                   adj_offsets_.end() - 1);
  for (const Edge& e : edges_) {
    adj_cells_[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(e.a)]++)] = e.b;
    adj_cells_[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(e.b)]++)] = e.a;
  }
}

const std::vector<std::int64_t>& UnstructuredMesh::adjacency_offsets() const {
  if (adj_offsets_.empty()) {
    build_adjacency();
  }
  return adj_offsets_;
}

const std::vector<CellId>& UnstructuredMesh::adjacency_cells() const {
  if (adj_offsets_.empty()) {
    build_adjacency();
  }
  return adj_cells_;
}

int UnstructuredMesh::degree(CellId cell) const {
  const auto& offsets = adjacency_offsets();
  CPX_REQUIRE(cell >= 0 && cell < num_cells(), "degree: bad cell " << cell);
  return static_cast<int>(offsets[static_cast<std::size_t>(cell) + 1] -
                          offsets[static_cast<std::size_t>(cell)]);
}

namespace {

/// Deterministic per-cell jitter in [-amp, amp].
double jitter(std::uint64_t seed, std::int64_t cell, int axis, double amp) {
  const std::uint64_t h =
      hash_mix(seed, static_cast<std::uint64_t>(cell),
               static_cast<std::uint64_t>(axis) + 0x1234);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0,1)
  return amp * (2.0 * u - 1.0);
}

}  // namespace

UnstructuredMesh make_box_mesh(int nx, int ny, int nz, std::uint64_t seed,
                               bool periodic) {
  CPX_REQUIRE(nx >= 1 && ny >= 1 && nz >= 1, "make_box_mesh: bad dims");
  const std::int64_t n = static_cast<std::int64_t>(nx) * ny * nz;
  std::vector<Vec3> centroids(static_cast<std::size_t>(n));
  std::vector<double> volumes(static_cast<std::size_t>(n), 1.0);
  const auto index = [&](int i, int j, int k) {
    return (static_cast<std::int64_t>(k) * ny + j) * nx + i;
  };
  constexpr double kJitterAmp = 0.15;  // < 0.5 keeps ordering monotone
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        const std::int64_t c = index(i, j, k);
        centroids[static_cast<std::size_t>(c)] = {
            i + 0.5 + jitter(seed, c, 0, kJitterAmp),
            j + 0.5 + jitter(seed, c, 1, kJitterAmp),
            k + 0.5 + jitter(seed, c, 2, kJitterAmp)};
      }
    }
  }
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(3 * n));
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        const std::int64_t c = index(i, j, k);
        if (i + 1 < nx) {
          edges.push_back({c, index(i + 1, j, k), 1.0, {1.0, 0.0, 0.0}});
        } else if (periodic && nx > 2) {
          edges.push_back({c, index(0, j, k), 1.0, {1.0, 0.0, 0.0}});
        }
        if (j + 1 < ny) {
          edges.push_back({c, index(i, j + 1, k), 1.0, {0.0, 1.0, 0.0}});
        } else if (periodic && ny > 2) {
          edges.push_back({c, index(i, 0, k), 1.0, {0.0, 1.0, 0.0}});
        }
        if (k + 1 < nz) {
          edges.push_back({c, index(i, j, k + 1), 1.0, {0.0, 0.0, 1.0}});
        } else if (periodic && nz > 2) {
          edges.push_back({c, index(i, j, 0), 1.0, {0.0, 0.0, 1.0}});
        }
      }
    }
  }
  return UnstructuredMesh(std::move(centroids), std::move(volumes),
                          std::move(edges));
}

UnstructuredMesh make_annulus_mesh(int nr, int ntheta, int nz, double r_inner,
                                   double r_outer, double sector_degrees,
                                   double length, std::uint64_t seed) {
  CPX_REQUIRE(nr >= 1 && ntheta >= 1 && nz >= 1, "make_annulus_mesh: bad dims");
  CPX_REQUIRE(r_outer > r_inner && r_inner > 0.0,
              "make_annulus_mesh: bad radii");
  CPX_REQUIRE(sector_degrees > 0.0 && sector_degrees <= 360.0,
              "make_annulus_mesh: bad sector");
  const std::int64_t n = static_cast<std::int64_t>(nr) * ntheta * nz;
  const double dr = (r_outer - r_inner) / nr;
  const double dtheta = sector_degrees * (3.14159265358979323846 / 180.0) /
                        ntheta;
  const double dz = length / nz;
  const bool full_wheel = sector_degrees >= 360.0 - 1e-9 && ntheta > 2;

  std::vector<Vec3> centroids(static_cast<std::size_t>(n));
  std::vector<double> volumes(static_cast<std::size_t>(n));
  const auto index = [&](int ir, int it, int iz) {
    return (static_cast<std::int64_t>(iz) * ntheta + it) * nr + ir;
  };
  constexpr double kJitterFrac = 0.1;
  for (int iz = 0; iz < nz; ++iz) {
    for (int it = 0; it < ntheta; ++it) {
      for (int ir = 0; ir < nr; ++ir) {
        const std::int64_t c = index(ir, it, iz);
        const double r = r_inner + (ir + 0.5) * dr +
                         jitter(seed, c, 0, kJitterFrac * dr);
        const double theta =
            (it + 0.5) * dtheta + jitter(seed, c, 1, kJitterFrac * dtheta);
        const double z =
            (iz + 0.5) * dz + jitter(seed, c, 2, kJitterFrac * dz);
        centroids[static_cast<std::size_t>(c)] = {r * std::cos(theta),
                                                  r * std::sin(theta), z};
        volumes[static_cast<std::size_t>(c)] = r * dr * dtheta * dz;
      }
    }
  }

  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(3 * n));
  for (int iz = 0; iz < nz; ++iz) {
    for (int it = 0; it < ntheta; ++it) {
      for (int ir = 0; ir < nr; ++ir) {
        const std::int64_t c = index(ir, it, iz);
        const double r = r_inner + (ir + 0.5) * dr;
        if (ir + 1 < nr) {
          edges.push_back({c, index(ir + 1, it, iz), r * dtheta * dz,
                           {1.0, 0.0, 0.0}});
        }
        if (it + 1 < ntheta) {
          edges.push_back({c, index(ir, it + 1, iz), dr * dz,
                           {0.0, 1.0, 0.0}});
        } else if (full_wheel) {
          edges.push_back({c, index(ir, 0, iz), dr * dz, {0.0, 1.0, 0.0}});
        }
        if (iz + 1 < nz) {
          edges.push_back({c, index(ir, it, iz + 1), r * dr * dtheta,
                           {0.0, 0.0, 1.0}});
        }
      }
    }
  }
  return UnstructuredMesh(std::move(centroids), std::move(volumes),
                          std::move(edges));
}

std::array<int, 3> box_dims_for(std::int64_t target_cells, double ax,
                                double ay, double az) {
  CPX_REQUIRE(target_cells >= 1, "box_dims_for: bad target");
  CPX_REQUIRE(ax > 0.0 && ay > 0.0 && az > 0.0, "box_dims_for: bad aspect");
  const double volume_scale =
      std::cbrt(static_cast<double>(target_cells) / (ax * ay * az));
  std::array<int, 3> dims = {
      std::max(1, static_cast<int>(std::lround(ax * volume_scale))),
      std::max(1, static_cast<int>(std::lround(ay * volume_scale))),
      std::max(1, static_cast<int>(std::lround(az * volume_scale)))};
  return dims;
}

}  // namespace cpx::mesh
