#pragma once
// SIMPIC performance instance: replays the mini-app's per-timestep compute
// and communication structure on the virtual cluster.
//
// The 1-D grid is block-decomposed over the ranks. Per timestep:
//   1. charge deposition over the rank's particles (perfectly parallel),
//   2. local tridiagonal elimination over the rank's cells, then the
//      *serial inter-rank pipeline*: the forward elimination's boundary
//      coefficients ripple rank 0 -> p-1, the back substitution ripples
//      p-1 -> 0. This O(p * latency) chain is SIMPIC's scalability wall —
//      and the reason "particles per cell" (parallel work per rank) is the
//      knob that positions the parallel-efficiency crossover.
//   3. grid-boundary exchange with the two 1-D neighbours,
//   4. particle gather+push (perfectly parallel),
//   5. migration of boundary-crossing particles to the two neighbours,
//   6. a diagnostics allreduce.

#include <cstdint>
#include <string>

#include "sim/app.hpp"
#include "simpic/stc.hpp"

namespace cpx::simpic {

/// Work-model coefficients for the SIMPIC kernels. The per-particle costs
/// are calibrated once (bench/calibrate) so Base-STC-28M reproduces the
/// paper's pressure-solver crossover (PE < 50% near 3000 cores) and reused
/// unchanged for every other configuration.
struct WorkModel {
  double flops_per_particle_deposit = 500.0;
  double bytes_per_particle_deposit = 96.0;
  double flops_per_particle_push = 1000.0;
  double bytes_per_particle_push = 160.0;
  double flops_per_cell_field = 16.0;
  double bytes_per_cell_field = 64.0;
  /// Fraction of a rank's particles that cross to a neighbour per step.
  double migration_fraction = 0.01;
  std::size_t bytes_per_particle = 3 * sizeof(double);  ///< x, v, weight
  /// Boundary payloads of the pipelined field solve.
  std::size_t pipeline_forward_bytes = 2 * sizeof(double);
  std::size_t pipeline_backward_bytes = sizeof(double);
};

class Instance final : public sim::App {
 public:
  /// `step_weight` scales one call to step() to a fraction or multiple of
  /// an STC timestep. The coupled workflow uses it to map STC total work
  /// onto the coupling schedule: an STC of S timesteps standing in for a
  /// pressure-solver run of N coupled steps executes S/N STC steps per
  /// coupled step (Base-STC: 50000/2000 = 25; Optimized-STC: 450/2000 =
  /// 0.225). Both compute and the field-solve pipeline scale with it.
  Instance(std::string name, const StcConfig& config, sim::RankRange ranks,
           const WorkModel& work = {}, double step_weight = 1.0);

  const std::string& name() const override { return name_; }
  sim::RankRange ranks() const override { return ranks_; }
  void step(sim::Cluster& cluster) override;

  const StcConfig& config() const { return config_; }
  const WorkModel& work_model() const { return work_; }

  /// Particles owned by one rank (uniform plasma: balanced decomposition).
  double particles_per_rank() const;
  double cells_per_rank() const;
  double step_weight() const { return step_weight_; }

  /// Virtual seconds of one full field-solve pipeline (forward + backward
  /// boundary ripple across all ranks) for this instance's placement.
  double pipeline_seconds(const sim::Cluster& cluster) const;

 private:
  void ensure_regions(sim::Cluster& cluster);

  std::string name_;
  StcConfig config_;
  sim::RankRange ranks_;
  WorkModel work_;
  double step_weight_ = 1.0;

  sim::RegionId region_deposit_ = -1;
  sim::RegionId region_field_ = -1;
  sim::RegionId region_push_ = -1;
  sim::RegionId region_migrate_ = -1;
  sim::RegionId region_reduce_ = -1;
  std::vector<sim::Message> message_scratch_;
};

}  // namespace cpx::simpic
