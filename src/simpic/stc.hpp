#pragma once
// SIMPIC test-case (STC) configurations — the paper's Fig 3 table plus the
// Optimized-STC of §IV-C. Each configuration makes SIMPIC's strong-scaling
// curve match a given pressure-solver mesh size: the "particles per cell"
// knob sets the ratio of perfectly-parallel particle work to the
// latency-bound field-solve pipeline, which is exactly what moves the
// parallel-efficiency crossover.

#include <cstdint>
#include <string>
#include <vector>

namespace cpx::simpic {

struct StcConfig {
  std::string name;
  std::int64_t cells = 0;
  double particles_per_cell = 0.0;
  int timesteps = 0;
  /// The pressure-solver mesh size (cells) this configuration stands in
  /// for; 0 when the configuration is not a proxy.
  std::int64_t proxy_mesh_cells = 0;

  std::int64_t total_particles() const {
    return static_cast<std::int64_t>(
        static_cast<double>(cells) * particles_per_cell);
  }
};

/// Fig 3, row 1: proxy for the 28M-cell single-sector swirl case.
StcConfig base_stc_28m();
/// Fig 3, row 2: proxy for the 84M-cell triple-sector swirl case.
StcConfig base_stc_84m();
/// Fig 3, row 3: proxy for the ~380M-cell full-scale combustor.
StcConfig base_stc_380m();
/// §IV-C: proxy for the *optimised* pressure solver (1.18M cells, 60k
/// particles per cell, 450 timesteps).
StcConfig optimized_stc();

/// All four named configurations, in paper order.
std::vector<StcConfig> all_stc_configs();

}  // namespace cpx::simpic
