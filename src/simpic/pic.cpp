#include "simpic/pic.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "ckpt/snapshot.hpp"
#include "support/check.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/simd.hpp"

namespace cpx::simpic {
namespace {

constexpr std::int64_t kParticleGrain = 8192;  ///< particles per task

}  // namespace

Pic::Pic(const PicOptions& options)
    : options_(options), rng_(options.seed) {
  CPX_REQUIRE(options.cells >= 2, "Pic: need at least 2 cells");
  CPX_REQUIRE(options.length > 0.0 && options.dt > 0.0, "Pic: bad geometry");
  dx_ = options.length / static_cast<double>(options.cells);
  const auto nodes = static_cast<std::size_t>(num_nodes());
  rho_.assign(nodes, 0.0);
  phi_.assign(nodes, 0.0);
  e_.assign(nodes, 0.0);
  background_ = 0.0;
}

void Pic::load_uniform(int per_cell, double v_thermal, double perturbation) {
  CPX_REQUIRE(per_cell >= 1, "load_uniform: bad per_cell");
  const std::int64_t total = options_.cells * per_cell;
  x_.clear();
  v_.clear();
  w_.clear();
  x_.reserve(static_cast<std::size_t>(total));
  v_.reserve(static_cast<std::size_t>(total));
  w_.reserve(static_cast<std::size_t>(total));

  // Weight so that the mean electron density is 1 (omega_p = 1); electrons
  // carry negative charge, neutralised by a uniform ion background.
  const double weight =
      -options_.length / static_cast<double>(total);
  constexpr double kTwoPi = 6.28318530717958647692;
  for (std::int64_t i = 0; i < total; ++i) {
    const double x0 = (static_cast<double>(i) + 0.5) /
                      static_cast<double>(total) * options_.length;
    const double dx_pert = perturbation * options_.length / kTwoPi *
                           std::sin(kTwoPi * x0 / options_.length);
    double x = x0 + dx_pert;
    if (options_.boundary == Boundary::kPeriodic) {
      x = std::fmod(x + options_.length, options_.length);
    } else {
      x = std::clamp(x, 0.0, options_.length);
    }
    const double v = v_thermal > 0.0 ? rng_.normal(0.0, v_thermal) : 0.0;
    add_particle(x, v, weight);
  }
  background_ = 1.0;  // uniform neutralising background of density 1
}

void Pic::add_particle(double x, double v, double weight) {
  CPX_REQUIRE(x >= 0.0 && x <= options_.length,
              "add_particle: x out of domain");
  x_.push_back(x);
  v_.push_back(v);
  w_.push_back(weight);
}

void Pic::set_background(double density) {
  CPX_REQUIRE(density >= 0.0, "set_background: negative density");
  background_ = density;
}

double Pic::cell_of(double x) const {
  return x / dx_;
}

void Pic::deposit() {
  CPX_METRICS_SCOPE("simpic/deposit");
  const auto nodes = static_cast<std::size_t>(num_nodes());
  const auto np = static_cast<std::int64_t>(x_.size());
  if (support::metrics::enabled()) {
    // Roofline accounting: cell/fraction/charge arithmetic plus the
    // two-node CIC scatter; streamed bytes = x/w reads + scatter r-m-w.
    support::metrics::counter_add("simpic/deposit_flops", 8 * np);
    support::metrics::counter_add("simpic/deposit_bytes", 48 * np);
  }

  support::simd::dispatch([&](auto width) {
    constexpr int W = decltype(width)::value;
    // Linear (CIC) weighting; divide by dx to convert charge to density.
    // The cell/fraction/charge arithmetic runs on packs; the scatter
    // itself stays serial IN ELEMENT ORDER inside the block, so the grid
    // accumulation order — and every bit of rho — is identical to the
    // scalar kernel at every pack width.
    const auto scatter_range = [&](std::int64_t i0, std::int64_t i1,
                                   std::span<double> rho) {
      const double* px = x_.data();
      const double* pw = w_.data();
      double* prho = rho.data();
      const auto vdx = support::simd::pack<W>::broadcast(dx_);
      const auto deposit_one = [&](double c, double q) {
        auto left = static_cast<std::int64_t>(c);
        left = std::clamp<std::int64_t>(left, 0, options_.cells - 1);
        const double frac = c - static_cast<double>(left);
        prho[left] += q * (1.0 - frac);
        prho[left + 1] += q * frac;
      };
      std::int64_t i = i0;
      for (; i + W <= i1; i += W) {
        const auto cv = support::simd::pack<W>::load(px + i) / vdx;
        const auto qv = support::simd::pack<W>::load(pw + i) / vdx;
        for (int j = 0; j < W; ++j) {
          deposit_one(cv[j], qv[j]);
        }
      }
      for (; i < i1; ++i) {
        deposit_one(cell_of(px[i]), pw[i] / dx_);
      }
    };

    const std::int64_t nchunks = support::num_chunks(0, np, kParticleGrain);
    if (nchunks <= 1) {
      // Single chunk: the plain serial scatter (bitwise identical to the
      // pre-threaded implementation).
      std::fill(rho_.begin(), rho_.end(), background_);
      scatter_range(0, np, rho_);
    } else {
      // Scatter-reduction: each chunk deposits into its own partial grid,
      // partials are combined in chunk order. The chunk decomposition is
      // fixed by the grain, so the summation order — and the result — is
      // independent of the thread count.
      deposit_partials_.assign(static_cast<std::size_t>(nchunks) * nodes,
                               0.0);
      support::parallel_chunks(
          0, np, kParticleGrain,
          [&](std::int64_t chunk, std::int64_t i0, std::int64_t i1, int) {
            scatter_range(
                i0, i1,
                std::span<double>(deposit_partials_.data() +
                                      static_cast<std::size_t>(chunk) * nodes,
                                  nodes));
          });
      std::fill(rho_.begin(), rho_.end(), background_);
      for (std::int64_t chunk = 0; chunk < nchunks; ++chunk) {
        const double* partial =
            deposit_partials_.data() + static_cast<std::size_t>(chunk) * nodes;
        for (std::size_t nidx = 0; nidx < nodes; ++nidx) {
          rho_[nidx] += partial[nidx];
        }
      }
    }
  });

  if (options_.boundary == Boundary::kPeriodic) {
    // Wrap the two wall nodes onto each other.
    const double wall = rho_.front() + rho_.back() - background_;
    rho_.front() = wall;
    rho_.back() = wall;
  }

  if (check::deep()) {
    double total_weight = 0.0;
    for (const double w : w_) {
      total_weight += w;
    }
    validate_charge_conservation(rho_, background_, dx_, options_.boundary,
                                 total_weight);
  }
}

std::vector<double> Pic::solve_poisson_dirichlet(
    std::span<const double> rho, double dx) {
  const std::size_t n = rho.size();
  CPX_REQUIRE(n >= 3, "solve_poisson_dirichlet: need >= 3 nodes");
  std::vector<double> phi(n, 0.0);
  // Interior unknowns 1..n-2; -(phi[i-1] - 2 phi[i] + phi[i+1])/dx^2 = rho[i].
  const std::size_t m = n - 2;
  std::vector<double> c(m, 0.0);  // superdiagonal after elimination
  std::vector<double> d(m, 0.0);  // rhs after elimination
  const double h2 = dx * dx;
  double b = 2.0;
  c[0] = -1.0 / b;
  d[0] = rho[1] * h2 / b;
  for (std::size_t i = 1; i < m; ++i) {
    const double denom = 2.0 + c[i - 1];
    c[i] = -1.0 / denom;
    d[i] = (rho[i + 1] * h2 + d[i - 1]) / denom;
  }
  phi[m] = d[m - 1];
  for (std::size_t i = m - 1; i >= 1; --i) {
    phi[i] = d[i - 1] - c[i - 1] * phi[i + 1];
  }
  return phi;
}

void Pic::solve_field() {
  CPX_METRICS_SCOPE("simpic/field");
  if (options_.boundary == Boundary::kPeriodic) {
    // Periodic Poisson solve via cyclic reduction is overkill in 1-D; use
    // the standard trick: subtract the mean charge (solvability), then
    // solve with pinned phi[0] = 0 by integrating twice.
    const std::size_t n = rho_.size();
    std::vector<double> rho0(rho_.begin(), rho_.end() - 1);
    double mean = 0.0;
    for (double r : rho0) {
      mean += r;
    }
    mean /= static_cast<double>(rho0.size());
    for (double& r : rho0) {
      r -= mean;
    }
    // E' = rho  ->  integrate; then remove mean E so the periodic integral
    // of phi' vanishes.
    std::vector<double> e(rho0.size() + 1, 0.0);
    for (std::size_t i = 1; i < e.size(); ++i) {
      e[i] = e[i - 1] + dx_ * 0.5 * (rho0[i - 1] +
                                     rho0[i % rho0.size()]);
    }
    double e_mean = 0.0;
    for (std::size_t i = 0; i < e.size() - 1; ++i) {
      e_mean += e[i];
    }
    e_mean /= static_cast<double>(e.size() - 1);
    for (double& v : e) {
      v -= e_mean;
    }
    e_.assign(e.begin(), e.end());
    // phi from E (for diagnostics only): phi' = -E.
    phi_.assign(n, 0.0);
    for (std::size_t i = 1; i < n; ++i) {
      phi_[i] = phi_[i - 1] - dx_ * 0.5 * (e_[i - 1] + e_[i]);
    }
    return;
  }

  const std::vector<double> phi = solve_poisson_dirichlet(rho_, dx_);
  phi_.assign(phi.begin(), phi.end());
  // E = -dphi/dx, one-sided at the walls.
  const std::size_t n = phi_.size();
  e_[0] = -(phi_[1] - phi_[0]) / dx_;
  for (std::size_t i = 1; i + 1 < n; ++i) {
    e_[i] = -(phi_[i + 1] - phi_[i - 1]) / (2.0 * dx_);
  }
  e_[n - 1] = -(phi_[n - 1] - phi_[n - 2]) / dx_;
}

void Pic::push() {
  CPX_METRICS_SCOPE("simpic/push");
  const double qm = -1.0;  // electron charge-to-mass in normalised units
  const auto np = static_cast<std::int64_t>(x_.size());
  if (support::metrics::enabled()) {
    support::metrics::counter_add("simpic/particles_pushed", np);
    // Roofline accounting: cell/fraction + E interpolation + leapfrog
    // update; streamed bytes = x/v reads, E gathers, x/v/keep writes.
    support::metrics::counter_add("simpic/push_flops", 10 * np);
    support::metrics::counter_add("simpic/push_bytes", 49 * np);
  }
  push_x_.resize(static_cast<std::size_t>(np));
  push_v_.resize(static_cast<std::size_t>(np));
  push_keep_.resize(static_cast<std::size_t>(np));

  // Gather + leapfrog advance, parallel over particles: each particle
  // writes its own slot, so the push is bitwise identical at any thread
  // count. The cell/interpolation/leapfrog arithmetic runs on packs with
  // the same per-element expressions as the scalar tail, so it is also
  // bitwise identical at every pack width; the clamp/gather and the
  // boundary fix-up are per-lane scalar.
  const double* pxv = x_.data();
  const double* pvv = v_.data();
  const double* pe = e_.data();
  double* pox = push_x_.data();
  double* pov = push_v_.data();
  unsigned char* pok = push_keep_.data();
  support::simd::dispatch([&](auto width) {
    constexpr int W = decltype(width)::value;
    support::parallel_for(0, np, kParticleGrain, [&](std::int64_t i0,
                                                     std::int64_t i1) {
      const auto vdx = support::simd::pack<W>::broadcast(dx_);
      const auto vone = support::simd::pack<W>::broadcast(1.0);
      const auto vdtqm =
          support::simd::pack<W>::broadcast(options_.dt * qm);
      const auto vdt = support::simd::pack<W>::broadcast(options_.dt);
      const auto settle = [&](std::int64_t i, double v, double x) {
        bool keep = true;
        if (options_.boundary == Boundary::kPeriodic) {
          x = std::fmod(x, options_.length);
          if (x < 0.0) {
            x += options_.length;
          }
        } else if (x < 0.0 || x > options_.length) {
          keep = false;  // absorbed at the wall
        }
        pox[i] = x;
        pov[i] = v;
        pok[i] = keep ? 1 : 0;
      };
      std::int64_t ii = i0;
      for (; ii + W <= i1; ii += W) {
        const auto xv = support::simd::pack<W>::load(pxv + ii);
        const auto cv = xv / vdx;
        std::int64_t left[W];
        std::int64_t right[W];
        support::simd::pack<W> fracp;
        for (int j = 0; j < W; ++j) {
          auto l = static_cast<std::int64_t>(cv[j]);
          l = std::clamp<std::int64_t>(l, 0, options_.cells - 1);
          left[j] = l;
          right[j] = l + 1;
          fracp.v[j] = cv[j] - static_cast<double>(l);
        }
        const auto ehere =
            support::simd::pack<W>::gather(pe, left) * (vone - fracp) +
            support::simd::pack<W>::gather(pe, right) * fracp;
        const auto vnew =
            support::simd::pack<W>::load(pvv + ii) + vdtqm * ehere;
        const auto xnew = xv + vdt * vnew;
        for (int j = 0; j < W; ++j) {
          settle(ii + j, vnew[j], xnew[j]);
        }
      }
      for (; ii < i1; ++ii) {
        const double c = cell_of(pxv[ii]);
        auto left = static_cast<std::int64_t>(c);
        left = std::clamp<std::int64_t>(left, 0, options_.cells - 1);
        const double frac = c - static_cast<double>(left);
        const double e_here =
            pe[left] * (1.0 - frac) + pe[left + 1] * frac;
        const double v = pvv[ii] + options_.dt * qm * e_here;
        const double x = pxv[ii] + options_.dt * v;
        settle(ii, v, x);
      }
    });
  });

  // Order-preserving compaction of the survivors (serial: it is a trivial
  // copy, and keeping the original particle order makes the result
  // independent of the execution schedule).
  std::size_t alive = 0;
  for (std::size_t i = 0; i < static_cast<std::size_t>(np); ++i) {
    if (push_keep_[i] != 0) {
      x_[alive] = push_x_[i];
      v_[alive] = push_v_[i];
      w_[alive] = w_[i];
      ++alive;
    }
  }
  x_.resize(alive);
  v_.resize(alive);
  w_.resize(alive);
}

void Pic::step() {
  deposit();
  solve_field();
  push();
  if (check::deep()) {
    validate();
  }
}

void Pic::validate() const {
  CPX_CHECK_MSG(v_.size() == x_.size() && w_.size() == x_.size(),
                "particle arrays out of sync: " << x_.size() << "/"
                                                << v_.size() << "/"
                                                << w_.size());
  const auto nodes = static_cast<std::size_t>(num_nodes());
  CPX_CHECK_MSG(rho_.size() == nodes && phi_.size() == nodes &&
                    e_.size() == nodes,
                "grid arrays not sized to " << nodes << " nodes");
  validate_particles(x_, options_.length);
  for (std::size_t i = 0; i < v_.size(); ++i) {
    CPX_CHECK_MSG(std::isfinite(v_[i]) && std::isfinite(w_[i]),
                  "particle " << i << " has non-finite velocity or weight");
  }
}

void validate_particles(std::span<const double> positions, double length) {
  for (std::size_t i = 0; i < positions.size(); ++i) {
    CPX_CHECK_MSG(std::isfinite(positions[i]) && positions[i] >= 0.0 &&
                      positions[i] <= length,
                  "particle " << i << " escaped the domain: x = "
                              << positions[i] << " not in [0, " << length
                              << "]");
  }
}

void validate_charge_conservation(std::span<const double> rho,
                                  double background, double dx,
                                  Boundary boundary, double total_weight) {
  CPX_REQUIRE(rho.size() >= 2 && dx > 0.0,
              "validate_charge_conservation: bad grid");
  // CIC deposit puts q(1-frac) and q*frac on the two bracketing nodes, so
  // summing (rho - background)*dx over the grid recovers the particle
  // charge exactly. Periodic wrap duplicates the folded wall value on both
  // wall nodes, so one of them is excluded from the sum.
  const std::size_t count =
      boundary == Boundary::kPeriodic ? rho.size() - 1 : rho.size();
  double grid_charge = 0.0;
  double scale = 1.0;
  for (std::size_t i = 0; i < count; ++i) {
    const double c = (rho[i] - background) * dx;
    grid_charge += c;
    scale += std::abs(c);
  }
  CPX_CHECK_MSG(std::abs(grid_charge - total_weight) <= 1e-9 * scale,
                "charge not conserved by deposit: grid holds "
                    << grid_charge << ", particles carry " << total_weight);
}

void Pic::serialize(ckpt::Writer& w) const {
  w.begin_section("simpic/pic");
  w.put_i64(options_.cells);
  w.put_f64(options_.length);
  w.put_f64(options_.dt);
  w.put_u8(options_.boundary == Boundary::kPeriodic ? 0 : 1);
  w.put_u64(options_.seed);
  w.put_u64(rng_.counter());
  w.put_f64(background_);
  w.put_f64_span(x_);
  w.put_f64_span(v_);
  w.put_f64_span(w_);
  w.put_f64_span(rho_);
  w.put_f64_span(phi_);
  w.put_f64_span(e_);
  w.end_section();
}

void Pic::restore(ckpt::Reader& r) {
  r.open_section("simpic/pic");
  const std::int64_t cells = r.get_i64();
  const double length = r.get_f64();
  const double dt = r.get_f64();
  const Boundary boundary =
      r.get_u8() == 0 ? Boundary::kPeriodic : Boundary::kAbsorbing;
  const std::uint64_t seed = r.get_u64();
  CPX_CHECK_MSG(cells == options_.cells && length == options_.length &&
                    dt == options_.dt && boundary == options_.boundary &&
                    seed == options_.seed,
                "Pic::restore: snapshot was taken with different options");
  rng_.restore_state(seed, r.get_u64());
  background_ = r.get_f64();
  r.get_f64_vec(x_);
  r.get_f64_vec(v_);
  r.get_f64_vec(w_);
  CPX_CHECK_MSG(v_.size() == x_.size() && w_.size() == x_.size(),
                "Pic::restore: particle arrays out of sync in snapshot");
  const auto nodes = static_cast<std::size_t>(num_nodes());
  r.get_f64_vec(rho_);
  r.get_f64_vec(phi_);
  r.get_f64_vec(e_);
  CPX_CHECK_MSG(rho_.size() == nodes && phi_.size() == nodes &&
                    e_.size() == nodes,
                "Pic::restore: grid arrays not sized to " << nodes
                                                          << " nodes");
  r.end_section();
  if (check::deep()) {
    validate();
  }
}

void Pic::run(int steps) {
  CPX_REQUIRE(steps >= 0, "run: bad step count");
  for (int s = 0; s < steps; ++s) {
    step();
  }
}

PicDiagnostics Pic::diagnostics() const {
  PicDiagnostics d;
  d.num_particles = num_particles();
  for (std::size_t i = 0; i < v_.size(); ++i) {
    // Mass of a particle equals |weight| in normalised units (q/m = -1).
    d.kinetic_energy += 0.5 * std::abs(w_[i]) * v_[i] * v_[i];
    d.total_charge += w_[i];
  }
  for (std::size_t i = 0; i + 1 < e_.size(); ++i) {
    const double em = 0.5 * (e_[i] + e_[i + 1]);
    d.field_energy += 0.5 * em * em * dx_;
  }
  return d;
}

}  // namespace cpx::simpic
