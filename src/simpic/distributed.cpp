#include "simpic/distributed.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <span>

#include "ckpt/snapshot.hpp"
#include "sim/comm_bridge.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace cpx::simpic {
namespace {

// Message tags of the per-step exchanges (one tag per logical channel so
// the pipeline carries can never match a boundary-merge payload).
enum Tag : int {
  kTagRho = 1,        ///< shared boundary-node charge, both directions
  kTagElim = 2,       ///< forward-elimination carry (c_prev, d_prev)
  kTagPhiBack = 3,    ///< back-substitution carry (phi of first unknown)
  kTagPhiShared = 4,  ///< shared-node phi, left owner -> right neighbour
  kTagGhostLeft = 5,  ///< phi[end-1] to the right neighbour (its left ghost)
  kTagGhostRight = 6, ///< phi[1] to the left neighbour (its right ghost)
  kTagMigrate = 7,    ///< packed (x, v, w) triplets of migrating particles
};

}  // namespace

DistributedPic::DistributedPic(const PicOptions& options, int parts)
    : options_(options), rng_(options.seed) {
  CPX_REQUIRE(parts >= 1, "DistributedPic: bad part count");
  CPX_REQUIRE(options.cells >= parts,
              "DistributedPic: fewer cells than parts");
  CPX_REQUIRE(options.boundary == Boundary::kAbsorbing,
              "DistributedPic: only absorbing walls are supported");
  dx_ = options.length / static_cast<double>(options.cells);

  ranks_.resize(static_cast<std::size_t>(parts));
  for (int r = 0; r < parts; ++r) {
    RankState& rs = ranks_[static_cast<std::size_t>(r)];
    const std::int64_t cell_begin = options.cells * r / parts;
    const std::int64_t cell_end = options.cells * (r + 1) / parts;
    rs.node_begin = cell_begin;
    rs.node_end = cell_end;  // shared with the right neighbour
    rs.x_lo = static_cast<double>(cell_begin) * dx_;
    rs.x_hi = static_cast<double>(cell_end) * dx_;
    const auto nodes = static_cast<std::size_t>(rs.node_end - rs.node_begin + 1);
    rs.rho.assign(nodes, 0.0);
    rs.phi.assign(nodes, 0.0);
    rs.e.assign(nodes, 0.0);
  }

  comm_ = comm::Communicator::world(parts, "simpic");
  const auto p = static_cast<std::size_t>(parts);
  rho_from_left_.assign(p, 0.0);
  rho_from_right_.assign(p, 0.0);
  phi_shared_recv_.assign(p, 0.0);
  ghost_from_left_.assign(p, 0.0);
  ghost_from_right_.assign(p, 0.0);
  migr_pack_.resize(p);
  // Per-rank right-hand-side staging for the Thomas solve (rho * h^2 per
  // unknown), sized once so the overlapped prep is allocation-free.
  rhs_scratch_.resize(p);
  for (int r = 0; r < parts; ++r) {
    const RankState& rs = ranks_[static_cast<std::size_t>(r)];
    const std::int64_t lo = std::max<std::int64_t>(rs.node_begin + 1, 1);
    const std::int64_t hi =
        std::min<std::int64_t>(rs.node_end, options.cells - 1);
    rhs_scratch_[static_cast<std::size_t>(r)].assign(
        static_cast<std::size_t>(std::max<std::int64_t>(hi - lo + 1, 0)),
        0.0);
  }
}

int DistributedPic::owner_of(double x) const {
  // Slices are near-uniform; start from the proportional guess and walk.
  int r = std::clamp(
      static_cast<int>(x / options_.length * num_parts()), 0,
      num_parts() - 1);
  while (r > 0 && x < ranks_[static_cast<std::size_t>(r)].x_lo) {
    --r;
  }
  while (r + 1 < num_parts() && x >= ranks_[static_cast<std::size_t>(r)].x_hi) {
    ++r;
  }
  return r;
}

void DistributedPic::load_uniform(int per_cell, double v_thermal,
                                  double perturbation) {
  CPX_REQUIRE(per_cell >= 1, "load_uniform: bad per_cell");
  // Generate the exact global particle sequence of Pic::load_uniform (same
  // RNG stream and order), routing each particle to its owner, so the
  // distributed initial condition matches the sequential one bit-for-bit.
  const std::int64_t total = options_.cells * per_cell;
  const double weight = -options_.length / static_cast<double>(total);
  constexpr double kTwoPi = 6.28318530717958647692;
  for (std::int64_t i = 0; i < total; ++i) {
    const double x0 = (static_cast<double>(i) + 0.5) /
                      static_cast<double>(total) * options_.length;
    const double dx_pert = perturbation * options_.length / kTwoPi *
                           std::sin(kTwoPi * x0 / options_.length);
    const double x = std::clamp(x0 + dx_pert, 0.0, options_.length);
    const double v = v_thermal > 0.0 ? rng_.normal(0.0, v_thermal) : 0.0;
    RankState& rs = ranks_[static_cast<std::size_t>(owner_of(x))];
    rs.x.push_back(x);
    rs.v.push_back(v);
    rs.w.push_back(weight);
  }
  background_ = 1.0;
}

void DistributedPic::deposit() {
  for (RankState& rs : ranks_) {
    std::fill(rs.rho.begin(), rs.rho.end(), background_);
    for (std::size_t i = 0; i < rs.x.size(); ++i) {
      const double c = rs.x[i] / dx_;
      auto left = static_cast<std::int64_t>(c);
      left = std::clamp<std::int64_t>(left, 0, options_.cells - 1);
      const double frac = c - static_cast<double>(left);
      const double q = rs.w[i] / dx_;
      const auto l0 = static_cast<std::size_t>(left - rs.node_begin);
      CPX_DCHECK(left >= rs.node_begin && left + 1 <= rs.node_end);
      rs.rho[l0] += q * (1.0 - frac);
      rs.rho[l0 + 1] += q * frac;
    }
  }
  // Merge the shared boundary nodes: both neighbours hold the node and
  // each contributed its own particles (plus the background once each).
  // Each rank sends its own edge value, then both sides apply the same
  // commutative merge — bitwise what the single-owner merge computed.
  const int parts = num_parts();
  for (int r = 0; r < parts; ++r) {
    const RankState& rs = ranks_[static_cast<std::size_t>(r)];
    if (r + 1 < parts) {
      comm_.isend_value(r, r + 1, kTagRho, rs.rho.back());
    }
    if (r > 0) {
      comm_.isend_value(r, r - 1, kTagRho, rs.rho.front());
    }
  }
  for (int r = 0; r + 1 < parts; ++r) {
    comm_.irecv_value(r + 1, r, kTagRho,
                      &rho_from_left_[static_cast<std::size_t>(r + 1)]);
    comm_.irecv_value(r, r + 1, kTagRho,
                      &rho_from_right_[static_cast<std::size_t>(r)]);
  }
  comm_.wait_all();
  for (int r = 0; r < parts; ++r) {
    RankState& rs = ranks_[static_cast<std::size_t>(r)];
    if (r + 1 < parts) {
      rs.rho.back() =
          rs.rho.back() + rho_from_right_[static_cast<std::size_t>(r)] -
          background_;
    }
    if (r > 0) {
      rs.rho.front() =
          rs.rho.front() + rho_from_left_[static_cast<std::size_t>(r)] -
          background_;
    }
  }
  if (cluster_ != nullptr) {
    sim::flush_sends(comm_, *cluster_, region_deposit_, 0);
  } else {
    comm_.clear_transfers();
  }
  if (cluster_ != nullptr) {
    for (int r = 0; r < num_parts(); ++r) {
      sim::Work w;
      w.flops = 12.0 * static_cast<double>(
                           ranks_[static_cast<std::size_t>(r)].x.size());
      w.bytes = 48.0 * static_cast<double>(
                           ranks_[static_cast<std::size_t>(r)].x.size());
      cluster_->compute(r, w, region_deposit_);
    }
  }
}

void DistributedPic::solve_field() {
  // Distributed Thomas algorithm on -phi'' = rho, Dirichlet walls.
  // Unknowns are interior nodes 1..N-1; rank r handles the unknowns in
  // (node_begin, node_end] (clipped to the interior). The elimination
  // recurrence continues across rank boundaries — the forward pass ripples
  // left to right, the back substitution right to left: the pipeline.
  const std::int64_t n_nodes = options_.cells;  // unknowns 1..n_nodes-1
  const double h2 = dx_ * dx_;

  struct Elim {
    std::vector<double> c;
    std::vector<double> d;
    std::int64_t first = 0;  ///< global index of first unknown handled
  };
  std::vector<Elim> elim(static_cast<std::size_t>(num_parts()));

  // --- forward pass (rank r waits for rank r-1) ---
  // The elimination carry (c_prev, d_prev) travels one hop per rank; each
  // rank blocks on its left neighbour's carry before eliminating — the
  // pipeline the performance instance charges. Rank 0 always handles at
  // least one unknown when there are >= 2 parts, so a received carry is
  // always live (have_prev below).
  const int parts = num_parts();
  double carry[2] = {0.0, 0.0};
  for (int r = 0; r < parts; ++r) {
    RankState& rs = ranks_[static_cast<std::size_t>(r)];
    Elim& el = elim[static_cast<std::size_t>(r)];
    const std::int64_t lo = std::max<std::int64_t>(rs.node_begin + 1, 1);
    const std::int64_t hi = std::min<std::int64_t>(rs.node_end, n_nodes - 1);
    const std::int64_t unknowns = std::max<std::int64_t>(hi - lo + 1, 0);

    // Right-hand-side prep (rho * h^2 per unknown) needs no carry — it is
    // the local work a rank can do while its left neighbour's carry is in
    // flight. Exact code motion: the recurrence below consumes the same
    // products it used to compute inline, so phi is bitwise unchanged.
    std::vector<double>& rhs = rhs_scratch_[static_cast<std::size_t>(r)];
    for (std::int64_t i = lo; i <= hi; ++i) {
      rhs[static_cast<std::size_t>(i - lo)] =
          rs.rho[static_cast<std::size_t>(i - rs.node_begin)] * h2;
    }
    const double prep_clock =
        cluster_ != nullptr ? cluster_->clock(r) : 0.0;
    sim::Work prep;
    prep.flops = 2.0 * static_cast<double>(unknowns);
    prep.bytes = 16.0 * static_cast<double>(unknowns);
    if (cluster_ != nullptr && overlap_) {
      // Overlap mode: prep is charged inside the carry's flight window.
      cluster_->compute(r, prep, region_field_);
    }
    if (r > 0) {
      comm_.irecv_span(r, r - 1, kTagElim, std::span<double>(carry));
      comm_.wait_all();
      if (cluster_ != nullptr) {
        if (overlap_) {
          cluster_->send_overlapped(r - 1, r, 2 * sizeof(double),
                                    prep_clock, region_field_);
        } else {
          cluster_->send(r - 1, r, 2 * sizeof(double), region_field_);
        }
      }
    }
    if (cluster_ != nullptr && !overlap_) {
      // Synchronous mode: the same prep cost lands after the carry wait —
      // both modes charge identical totals, placed differently.
      cluster_->compute(r, prep, region_field_);
    }
    double c_prev = carry[0];
    double d_prev = carry[1];
    bool have_prev = r > 0;
    el.first = lo;
    for (std::int64_t i = lo; i <= hi; ++i) {
      const double rhs_i = rhs[static_cast<std::size_t>(i - lo)];
      double ci;
      double di;
      if (!have_prev) {
        ci = -1.0 / 2.0;
        di = rhs_i / 2.0;
        have_prev = true;
      } else {
        const double denom = 2.0 + c_prev;
        ci = -1.0 / denom;
        di = (rhs_i + d_prev) / denom;
      }
      el.c.push_back(ci);
      el.d.push_back(di);
      c_prev = ci;
      d_prev = di;
    }
    if (cluster_ != nullptr) {
      sim::Work elim_work;
      elim_work.flops = 8.0 * static_cast<double>(unknowns);
      elim_work.bytes = 48.0 * static_cast<double>(unknowns);
      cluster_->compute(r, elim_work, region_field_);
    }
    if (r + 1 < parts) {
      carry[0] = c_prev;
      carry[1] = d_prev;
      comm_.isend_span(r, r + 1, kTagElim,
                       std::span<const double>(carry, 2));
    }
  }

  // --- back substitution (rank r waits for rank r+1) ---
  double phi_next = 0.0;  // phi[n_nodes] = 0 wall
  for (int r = parts - 1; r >= 0; --r) {
    RankState& rs = ranks_[static_cast<std::size_t>(r)];
    const Elim& el = elim[static_cast<std::size_t>(r)];
    if (r + 1 < parts) {
      comm_.irecv_value(r, r + 1, kTagPhiBack, &phi_next);
      comm_.wait_all();
      if (cluster_ != nullptr) {
        cluster_->send(r + 1, r, sizeof(double), region_field_);
      }
    }
    for (std::int64_t k = static_cast<std::int64_t>(el.c.size()) - 1;
         k >= 0; --k) {
      const std::int64_t i = el.first + k;
      double phi_i;
      if (i == n_nodes - 1) {
        phi_i = el.d[static_cast<std::size_t>(k)];
      } else {
        phi_i = el.d[static_cast<std::size_t>(k)] -
                el.c[static_cast<std::size_t>(k)] * phi_next;
      }
      rs.phi[static_cast<std::size_t>(i - rs.node_begin)] = phi_i;
      phi_next = phi_i;
    }
    // Walls stay zero; shared nodes are filled on both sides below.
    if (rs.node_begin == 0) {
      rs.phi.front() = 0.0;
    }
    if (rs.node_end == n_nodes) {
      rs.phi.back() = 0.0;
    }
    if (cluster_ != nullptr) {
      sim::Work back;
      back.flops =
          4.0 * static_cast<double>(el.c.size());
      back.bytes =
          24.0 * static_cast<double>(el.c.size());
      cluster_->compute(r, back, region_field_);
    }
    if (r > 0) {
      comm_.isend_value(r, r - 1, kTagPhiBack, phi_next);
    }
  }
  // Pipeline hops are charged inline above (send / send_overlapped at
  // each receive), so the recorded transfers are accounting duplicates.
  comm_.clear_transfers();

  // Shared node phi values: the *left* rank computes the shared node (its
  // unknown range is (node_begin, node_end]); send to the right
  // neighbour's first node. Like the ghost exchange below, this is part
  // of the field compute's memory traffic, not a charged message.
  for (int r = 0; r + 1 < parts; ++r) {
    const RankState& rs = ranks_[static_cast<std::size_t>(r)];
    comm_.isend_value(r, r + 1, kTagPhiShared, rs.phi.back());
  }
  for (int r = 1; r < parts; ++r) {
    comm_.irecv_value(r, r - 1, kTagPhiShared,
                      &phi_shared_recv_[static_cast<std::size_t>(r)]);
  }
  comm_.wait_all();
  for (int r = 1; r < parts; ++r) {
    RankState& rs = ranks_[static_cast<std::size_t>(r)];
    rs.phi.front() = phi_shared_recv_[static_cast<std::size_t>(r)];
  }

  // --- E = -dphi/dx: central differences need one phi beyond each end ---
  // Ghost exchange: every rank sends its own second-from-edge phi values
  // (post shared-node update) to the neighbours that need them.
  for (int r = 0; r < parts; ++r) {
    const RankState& rs = ranks_[static_cast<std::size_t>(r)];
    if (r + 1 < parts) {
      comm_.isend_value(r, r + 1, kTagGhostLeft, rs.phi[rs.phi.size() - 2]);
    }
    if (r > 0) {
      comm_.isend_value(r, r - 1, kTagGhostRight, rs.phi[1]);
    }
  }
  for (int r = 0; r < parts; ++r) {
    if (r > 0) {
      comm_.irecv_value(r, r - 1, kTagGhostLeft,
                        &ghost_from_left_[static_cast<std::size_t>(r)]);
    }
    if (r + 1 < parts) {
      comm_.irecv_value(r, r + 1, kTagGhostRight,
                        &ghost_from_right_[static_cast<std::size_t>(r)]);
    }
  }
  comm_.wait_all();
  comm_.clear_transfers();  // shared/ghost phi is never cluster-charged

  for (int r = 0; r < parts; ++r) {
    RankState& rs = ranks_[static_cast<std::size_t>(r)];
    const auto nodes = rs.phi.size();
    const double phi_left_ghost =
        rs.node_begin == 0 ? 0.0
                           : ghost_from_left_[static_cast<std::size_t>(r)];
    const double phi_right_ghost =
        rs.node_end == n_nodes
            ? 0.0
            : ghost_from_right_[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < nodes; ++i) {
      const std::int64_t g = rs.node_begin + static_cast<std::int64_t>(i);
      if (g == 0) {
        rs.e[i] = -(rs.phi[1] - rs.phi[0]) / dx_;
      } else if (g == n_nodes) {
        rs.e[i] = -(rs.phi[nodes - 1] - rs.phi[nodes - 2]) / dx_;
      } else {
        const double phi_m = i == 0 ? phi_left_ghost : rs.phi[i - 1];
        const double phi_p = i + 1 == nodes ? phi_right_ghost : rs.phi[i + 1];
        rs.e[i] = -(phi_p - phi_m) / (2.0 * dx_);
      }
    }
    if (cluster_ != nullptr) {
      sim::Work w;
      w.flops = 16.0 * static_cast<double>(nodes);
      w.bytes = 64.0 * static_cast<double>(nodes);
      cluster_->compute(r, w, region_field_);
    }
  }
}

void DistributedPic::push_and_migrate() {
  last_migrations_ = 0;
  const double qm = -1.0;
  const int parts = num_parts();

  for (int r = 0; r < parts; ++r) {
    RankState& rs = ranks_[static_cast<std::size_t>(r)];
    for (std::vector<double>& pack : migr_pack_) {
      pack.clear();
    }
    std::size_t alive = 0;
    for (std::size_t i = 0; i < rs.x.size(); ++i) {
      const double c = rs.x[i] / dx_;
      auto left = static_cast<std::int64_t>(c);
      left = std::clamp<std::int64_t>(left, 0, options_.cells - 1);
      const double frac = c - static_cast<double>(left);
      const auto l0 = static_cast<std::size_t>(left - rs.node_begin);
      const double e_here = rs.e[l0] * (1.0 - frac) + rs.e[l0 + 1] * frac;
      const double v = rs.v[i] + options_.dt * qm * e_here;
      const double x = rs.x[i] + options_.dt * v;
      if (x < 0.0 || x > options_.length) {
        continue;  // absorbed at the wall
      }
      if (x >= rs.x_lo && x < rs.x_hi) {
        rs.x[alive] = x;
        rs.v[alive] = v;
        rs.w[alive] = rs.w[i];
        ++alive;
      } else {
        // Pack (x, v, w) for the new owner; one message per destination.
        std::vector<double>& pack =
            migr_pack_[static_cast<std::size_t>(owner_of(x))];
        pack.push_back(x);
        pack.push_back(v);
        pack.push_back(rs.w[i]);
      }
    }
    rs.x.resize(alive);
    rs.v.resize(alive);
    rs.w.resize(alive);
    for (int dst = 0; dst < parts; ++dst) {
      const std::vector<double>& pack =
          migr_pack_[static_cast<std::size_t>(dst)];
      if (!pack.empty()) {
        comm_.isend_span(r, dst, kTagMigrate, std::span<const double>(pack));
        last_migrations_ += static_cast<std::int64_t>(pack.size() / 3);
      }
    }
    if (cluster_ != nullptr) {
      sim::Work w;
      w.flops = 20.0 * static_cast<double>(alive);
      w.bytes = 72.0 * static_cast<double>(alive);
      cluster_->compute(r, w, region_push_);
    }
  }

  // Deliver: sources ascending per destination, particles in push order —
  // the append order the single-array implementation produced.
  for (int r = 0; r < parts; ++r) {
    RankState& rs = ranks_[static_cast<std::size_t>(r)];
    comm_.deliver(r, kTagMigrate,
                  [&rs](comm::Rank, std::span<const std::byte> payload) {
                    CPX_CHECK(payload.size() % (3 * sizeof(double)) == 0);
                    double p[3];
                    for (std::size_t off = 0; off < payload.size();
                         off += sizeof(p)) {
                      std::memcpy(p, payload.data() + off, sizeof(p));
                      rs.x.push_back(p[0]);
                      rs.v.push_back(p[1]);
                      rs.w.push_back(p[2]);
                    }
                  });
  }
  if (cluster_ != nullptr) {
    sim::flush_exchange(comm_, *cluster_, region_migrate_, 0,
                        message_scratch_);
  } else {
    comm_.clear_transfers();
  }
}

void DistributedPic::step() {
  deposit();
  solve_field();
  push_and_migrate();
}

void DistributedPic::run(int steps) {
  CPX_REQUIRE(steps >= 0, "run: bad step count");
  for (int s = 0; s < steps; ++s) {
    step();
  }
}

std::int64_t DistributedPic::num_particles() const {
  std::int64_t total = 0;
  for (const RankState& rs : ranks_) {
    total += static_cast<std::int64_t>(rs.x.size());
  }
  return total;
}

PicDiagnostics DistributedPic::diagnostics() const {
  PicDiagnostics d;
  d.num_particles = num_particles();
  for (const RankState& rs : ranks_) {
    for (std::size_t i = 0; i < rs.v.size(); ++i) {
      d.kinetic_energy += 0.5 * std::abs(rs.w[i]) * rs.v[i] * rs.v[i];
      d.total_charge += rs.w[i];
    }
    // Field energy over this rank's cells (nodes node_begin..node_end).
    for (std::size_t i = 0; i + 1 < rs.e.size(); ++i) {
      const double em = 0.5 * (rs.e[i] + rs.e[i + 1]);
      d.field_energy += 0.5 * em * em * dx_;
    }
  }
  return d;
}

std::vector<double> DistributedPic::gather_rho() const {
  std::vector<double> out(static_cast<std::size_t>(options_.cells) + 1, 0.0);
  for (const RankState& rs : ranks_) {
    for (std::size_t i = 0; i < rs.rho.size(); ++i) {
      out[static_cast<std::size_t>(rs.node_begin) + i] = rs.rho[i];
    }
  }
  return out;
}

std::vector<double> DistributedPic::gather_phi() const {
  std::vector<double> out(static_cast<std::size_t>(options_.cells) + 1, 0.0);
  for (const RankState& rs : ranks_) {
    for (std::size_t i = 0; i < rs.phi.size(); ++i) {
      out[static_cast<std::size_t>(rs.node_begin) + i] = rs.phi[i];
    }
  }
  return out;
}

std::vector<double> DistributedPic::gather_efield() const {
  std::vector<double> out(static_cast<std::size_t>(options_.cells) + 1, 0.0);
  for (const RankState& rs : ranks_) {
    for (std::size_t i = 0; i < rs.e.size(); ++i) {
      out[static_cast<std::size_t>(rs.node_begin) + i] = rs.e[i];
    }
  }
  return out;
}

std::vector<double> DistributedPic::gather_positions() const {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(num_particles()));
  for (const RankState& rs : ranks_) {
    out.insert(out.end(), rs.x.begin(), rs.x.end());
  }
  return out;
}

void DistributedPic::attach_cluster(sim::Cluster* cluster) {
  cluster_ = cluster;
  if (cluster_ != nullptr) {
    CPX_REQUIRE(cluster_->num_ranks() >= num_parts(),
                "attach_cluster: cluster too small");
    region_deposit_ = cluster_->region("dist_simpic/deposit");
    region_field_ = cluster_->region("dist_simpic/field");
    region_push_ = cluster_->region("dist_simpic/push");
    region_migrate_ = cluster_->region("dist_simpic/migrate");
  }
}

void DistributedPic::serialize(ckpt::Writer& w) const {
  w.begin_section("simpic/distributed");
  w.put_i64(options_.cells);
  w.put_f64(options_.length);
  w.put_f64(options_.dt);
  w.put_u64(options_.seed);
  w.put_u32(static_cast<std::uint32_t>(num_parts()));
  w.put_u64(rng_.counter());
  w.put_f64(background_);
  w.put_i64(last_migrations_);
  w.put_u8(overlap_ ? 1 : 0);
  for (const RankState& rs : ranks_) {
    w.put_f64_span(rs.x);
    w.put_f64_span(rs.v);
    w.put_f64_span(rs.w);
    w.put_f64_span(rs.rho);
    w.put_f64_span(rs.phi);
    w.put_f64_span(rs.e);
  }
  w.end_section();
}

void DistributedPic::restore(ckpt::Reader& r) {
  r.open_section("simpic/distributed");
  const std::int64_t cells = r.get_i64();
  const double length = r.get_f64();
  const double dt = r.get_f64();
  const std::uint64_t seed = r.get_u64();
  const auto parts = static_cast<int>(r.get_u32());
  CPX_CHECK_MSG(cells == options_.cells && length == options_.length &&
                    dt == options_.dt && seed == options_.seed &&
                    parts == num_parts(),
                "DistributedPic::restore: snapshot was taken with a "
                "different decomposition");
  rng_.restore_state(seed, r.get_u64());
  background_ = r.get_f64();
  last_migrations_ = r.get_i64();
  overlap_ = r.get_u8() != 0;
  for (RankState& rs : ranks_) {
    r.get_f64_vec(rs.x);
    r.get_f64_vec(rs.v);
    r.get_f64_vec(rs.w);
    CPX_CHECK_MSG(rs.v.size() == rs.x.size() && rs.w.size() == rs.x.size(),
                  "DistributedPic::restore: particle arrays out of sync");
    const auto nodes =
        static_cast<std::size_t>(rs.node_end - rs.node_begin + 1);
    r.get_f64_vec(rs.rho);
    r.get_f64_vec(rs.phi);
    r.get_f64_vec(rs.e);
    CPX_CHECK_MSG(rs.rho.size() == nodes && rs.phi.size() == nodes &&
                      rs.e.size() == nodes,
                  "DistributedPic::restore: grid arrays not sized to the "
                  "local node slice");
  }
  r.end_section();
}

}  // namespace cpx::simpic
