#pragma once
// SIMPIC numerics: a 1-D electrostatic particle-in-cell code, reimplemented
// from the published description of the Sandia/LECAD SIMPIC mini-app.
//
// Normalised units: the plasma frequency of a uniform electron background
// at density n0 = 1 is omega_p = 1 (q/m = -1, epsilon_0 = 1, immobile
// neutralising ion background). Each timestep:
//   1. deposit particle charge to the grid (CIC / linear weighting),
//   2. solve the 1-D Poisson equation  -phi'' = rho  (Thomas algorithm,
//      Dirichlet phi = 0 at both walls),
//   3. difference E = -dphi/dx onto the grid,
//   4. gather E at particle positions (linear interpolation) and advance
//      particles with the leapfrog scheme,
//   5. apply boundary conditions (periodic or absorbing walls).
//
// This class provides the real physics at test/example scale; the
// distributed performance behaviour (including the serial inter-rank
// pipeline of the field solve) is modelled by simpic::Instance.

#include <cstdint>
#include <span>
#include <vector>

#include "support/aligned.hpp"
#include "support/rng.hpp"

namespace cpx::ckpt {
class Writer;
class Reader;
}  // namespace cpx::ckpt

namespace cpx::simpic {

enum class Boundary { kPeriodic, kAbsorbing };

struct PicOptions {
  std::int64_t cells = 128;
  double length = 1.0;
  double dt = 0.05;  ///< in units of 1/omega_p
  Boundary boundary = Boundary::kPeriodic;
  std::uint64_t seed = 1234;
};

struct PicDiagnostics {
  double kinetic_energy = 0.0;
  double field_energy = 0.0;
  double total_charge = 0.0;  ///< particle charge deposited on the grid
  std::int64_t num_particles = 0;
};

class Pic {
 public:
  explicit Pic(const PicOptions& options);

  /// Loads `per_cell` particles per cell, uniformly spaced with thermal
  /// velocity `v_thermal`, and a sinusoidal position perturbation of
  /// relative amplitude `perturbation` (mode 1).
  void load_uniform(int per_cell, double v_thermal = 0.0,
                    double perturbation = 0.0);

  /// Adds one particle (weight w is its charge contribution).
  void add_particle(double x, double v, double weight);

  /// Sets the neutralising ion background density (load_uniform sets it to
  /// 1; manual particle loading must set it so the plasma is neutral).
  void set_background(double density);

  std::int64_t num_particles() const {
    return static_cast<std::int64_t>(x_.size());
  }
  std::int64_t num_nodes() const { return options_.cells + 1; }

  const support::aligned_vector<double>& positions() const { return x_; }
  const support::aligned_vector<double>& velocities() const { return v_; }
  const support::aligned_vector<double>& rho() const { return rho_; }
  const support::aligned_vector<double>& phi() const { return phi_; }
  const support::aligned_vector<double>& efield() const { return e_; }

  /// One full PIC timestep.
  void step();
  void run(int steps);

  PicDiagnostics diagnostics() const;

  /// Deep invariant walk (tier 2, support/check.hpp): consistent particle
  /// array sizes, grid arrays sized to the node count, every particle
  /// inside [0, length] with finite velocity and weight. Runs
  /// automatically after every step when check::deep() is on; the
  /// charge-conservation audit runs inside deposit(). Throws CheckError.
  void validate() const;

  // --- Individual stages (exposed for testing) ---
  void deposit();
  void solve_field();
  void push();

  /// The persisted RNG stream position. The generator is counter-based
  /// (support/rng.hpp): load_uniform draws advance it, and restoring the
  /// (seed, counter) pair resumes the stream instead of replaying it.
  std::uint64_t rng_counter() const { return rng_.counter(); }

  /// Snapshot section "simpic/pic" (docs/checkpoint.md): particle arrays,
  /// grid fields, ion background, and the RNG stream position. Restore
  /// validates against this instance's options and throws CheckError on
  /// mismatch or corruption.
  void serialize(ckpt::Writer& w) const;
  void restore(ckpt::Reader& r);

  /// Solves -phi'' = rho with Dirichlet ends on an arbitrary rhs (used by
  /// the Poisson-accuracy tests). Grid spacing dx, n nodes.
  static std::vector<double> solve_poisson_dirichlet(
      std::span<const double> rho, double dx);

 private:
  double cell_of(double x) const;

  PicOptions options_;
  double dx_;  ///< derived from options, rebuilt // cpx-lint: allow(ckpt)
  CounterRng rng_;

  // Particle storage (structure-of-arrays, as in SIMPIC). 64-byte-aligned
  // so the simd::pack block loads in push/deposit start on cache lines.
  support::aligned_vector<double> x_;
  support::aligned_vector<double> v_;
  support::aligned_vector<double> w_;  ///< per-particle charge weight

  // Grid fields on nodes [0, cells].
  support::aligned_vector<double> rho_;
  support::aligned_vector<double> phi_;
  support::aligned_vector<double> e_;

  double background_;  ///< neutralising ion background density

  // Scratch for the threaded deposit/push stages (docs/parallelism.md):
  // per-chunk charge partials combined in chunk order, and the pushed
  // particle state before the order-preserving compaction. Resized per
  // step, so the snapshot deliberately omits it.
  support::aligned_vector<double> deposit_partials_;  // cpx-lint: allow(ckpt)
  support::aligned_vector<double> push_x_;            // cpx-lint: allow(ckpt)
  support::aligned_vector<double> push_v_;            // cpx-lint: allow(ckpt)
  std::vector<unsigned char> push_keep_;              // cpx-lint: allow(ckpt)
};

/// Checks every position lies in [0, length] and is finite. Free function
/// so tests can reject deliberately corrupted particle sets directly.
void validate_particles(std::span<const double> positions, double length);

/// Checks the deposited grid charge matches the particle charge: with CIC
/// weighting the grid integral of (rho - background) equals the summed
/// particle weights exactly (the periodic wrap folds the two wall nodes
/// onto one). `total_weight` is the summed particle charge. Throws
/// CheckError when conservation is violated beyond rounding.
void validate_charge_conservation(std::span<const double> rho,
                                  double background, double dx,
                                  Boundary boundary, double total_weight);

}  // namespace cpx::simpic
