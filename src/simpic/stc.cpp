#include "simpic/stc.hpp"

namespace cpx::simpic {

StcConfig base_stc_28m() {
  return {"Base-STC-28M", 512'000, 100.0, 50'000, 28'000'000};
}

StcConfig base_stc_84m() {
  return {"Base-STC-84M", 512'000, 300.0, 50'000, 84'000'000};
}

StcConfig base_stc_380m() {
  return {"Base-STC-380M", 512'000, 1800.0, 50'000, 380'000'000};
}

StcConfig optimized_stc() {
  return {"Optimized-STC", 1'180'000, 60'000.0, 450, 380'000'000};
}

std::vector<StcConfig> all_stc_configs() {
  return {base_stc_28m(), base_stc_84m(), base_stc_380m(), optimized_stc()};
}

}  // namespace cpx::simpic
