#include "simpic/instance.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace cpx::simpic {

Instance::Instance(std::string name, const StcConfig& config,
                   sim::RankRange ranks, const WorkModel& work,
                   double step_weight)
    : name_(std::move(name)),
      config_(config),
      ranks_(ranks),
      work_(work),
      step_weight_(step_weight) {
  CPX_REQUIRE(ranks.size() >= 1, "Instance: empty rank range");
  CPX_REQUIRE(config.cells >= ranks.size(),
              "Instance: fewer cells (" << config.cells << ") than ranks ("
                                        << ranks.size() << ")");
  CPX_REQUIRE(config.particles_per_cell > 0.0,
              "Instance: bad particles_per_cell");
  CPX_REQUIRE(step_weight > 0.0, "Instance: bad step_weight");
}

double Instance::particles_per_rank() const {
  return static_cast<double>(config_.total_particles()) /
         static_cast<double>(ranks_.size());
}

double Instance::cells_per_rank() const {
  return static_cast<double>(config_.cells) /
         static_cast<double>(ranks_.size());
}

double Instance::pipeline_seconds(const sim::Cluster& cluster) const {
  // Forward elimination ripples rank 0 -> p-1, back substitution p-1 -> 0.
  // Each hop costs latency plus sender+receiver software overhead; hops
  // crossing a node boundary pay inter-node latency.
  const sim::MachineModel& m = cluster.machine();
  const int p = ranks_.size();
  if (p <= 1) {
    return 0.0;
  }
  const int first_node = cluster.node_of(ranks_.begin);
  const int last_node = cluster.node_of(ranks_.end - 1);
  const int inter_hops = last_node - first_node;
  const int intra_hops = (p - 1) - inter_hops;
  const double fwd_bytes = static_cast<double>(work_.pipeline_forward_bytes);
  const double bwd_bytes = static_cast<double>(work_.pipeline_backward_bytes);
  const double hop_intra =
      m.lat_intra + 2.0 * m.msg_overhead +
      (fwd_bytes + bwd_bytes) / 2.0 / m.bw_intra;
  const double hop_inter =
      m.lat_inter + 2.0 * m.msg_overhead +
      (fwd_bytes + bwd_bytes) / 2.0 / m.bw_inter;
  // Forward and backward passes traverse the same hops.
  return 2.0 * (intra_hops * hop_intra + inter_hops * hop_inter);
}

void Instance::ensure_regions(sim::Cluster& cluster) {
  region_deposit_ = cluster.region(name_ + "/deposit");
  region_field_ = cluster.region(name_ + "/field");
  region_push_ = cluster.region(name_ + "/push");
  region_migrate_ = cluster.region(name_ + "/migrate");
  region_reduce_ = cluster.region(name_ + "/reduce");
}

void Instance::step(sim::Cluster& cluster) {
  ensure_regions(cluster);
  const int p = ranks_.size();
  const double particles = particles_per_rank() * step_weight_;
  const double cells = cells_per_rank() * step_weight_;

  // 1. Charge deposition — perfectly parallel particle sweep.
  for (int l = 0; l < p; ++l) {
    sim::Work w;
    w.flops = particles * work_.flops_per_particle_deposit;
    w.bytes = particles * work_.bytes_per_particle_deposit;
    cluster.compute(ranks_.begin + l, w, region_deposit_);
  }

  // 2. Field solve: local tridiagonal elimination, then the serial
  //    forward/backward boundary pipeline across ranks. The pipeline is a
  //    full synchronisation: no rank can push particles before the back
  //    substitution has reached it, so every rank leaves at
  //    max(entry clocks) + pipeline time.
  for (int l = 0; l < p; ++l) {
    sim::Work w;
    w.flops = cells * work_.flops_per_cell_field;
    w.bytes = cells * work_.bytes_per_cell_field;
    cluster.compute(ranks_.begin + l, w, region_field_);
  }
  if (p > 1) {
    const double done = cluster.max_clock(ranks_) +
                        step_weight_ * pipeline_seconds(cluster);
    cluster.wait_until(ranks_, done, region_field_);
  }

  // 3+4. Gather + leapfrog push — perfectly parallel.
  for (int l = 0; l < p; ++l) {
    sim::Work w;
    w.flops = particles * work_.flops_per_particle_push;
    w.bytes = particles * work_.bytes_per_particle_push;
    cluster.compute(ranks_.begin + l, w, region_push_);
  }

  // 5. Migration of boundary-crossing particles to the 1-D neighbours.
  if (p > 1) {
    const auto bytes = static_cast<std::size_t>(
        work_.migration_fraction * particles *
        static_cast<double>(work_.bytes_per_particle));
    message_scratch_.clear();
    for (int l = 0; l < p; ++l) {
      if (l > 0) {
        message_scratch_.push_back(
            {ranks_.begin + l, ranks_.begin + l - 1, bytes});
      }
      if (l + 1 < p) {
        message_scratch_.push_back(
            {ranks_.begin + l, ranks_.begin + l + 1, bytes});
      }
    }
    cluster.exchange(message_scratch_, region_migrate_);
  }

  // 6. Diagnostics allreduce (energies, particle count).
  cluster.allreduce(ranks_, 4 * sizeof(double), region_reduce_);
}

}  // namespace cpx::simpic
