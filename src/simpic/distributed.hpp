#pragma once
// Distributed-memory SIMPIC: the 1-D electrostatic PIC actually decomposed
// over ranks, with real boundary-node charge merging, the *pipelined*
// distributed Thomas solve (forward elimination ripples rank 0 -> p-1,
// back substitution ripples p-1 -> 0 — the serial chain the performance
// instance charges to the virtual cluster), and real particle migration
// between neighbouring ranks. All rank-to-rank bytes move through the
// comm layer (src/comm/, docs/communication.md): boundary charges and
// pipeline carries are isend/irecv pairs, migrated particles travel as
// packed triplets matched by Communicator::deliver.
//
// The distributed field solve continues the sequential algorithm's
// elimination recurrence across rank boundaries, so the result matches
// Pic::solve_poisson_dirichlet exactly; tests verify that fields,
// energies, and particle populations agree with the sequential solver.
//
// Restricted to absorbing (Dirichlet) walls: the periodic variant needs a
// cyclic solve that the production-relevant pipeline discussion does not
// depend on.

#include <cstdint>
#include <vector>

#include "comm/communicator.hpp"
#include "sim/cluster.hpp"
#include "simpic/pic.hpp"

namespace cpx::ckpt {
class Writer;
class Reader;
}  // namespace cpx::ckpt

namespace cpx::simpic {

class DistributedPic {
 public:
  /// Decomposes `options.cells` cells over `parts` contiguous slices.
  /// options.boundary must be kAbsorbing.
  DistributedPic(const PicOptions& options, int parts);

  int num_parts() const { return static_cast<int>(ranks_.size()); }

  /// Loads the same initial condition as Pic::load_uniform (particles are
  /// assigned to the rank owning their position).
  void load_uniform(int per_cell, double v_thermal = 0.0,
                    double perturbation = 0.0);

  void step();
  void run(int steps);

  std::int64_t num_particles() const;
  PicDiagnostics diagnostics() const;

  /// Fields gathered to global node order.
  std::vector<double> gather_rho() const;
  std::vector<double> gather_phi() const;
  std::vector<double> gather_efield() const;
  /// All particle positions (unordered across ranks).
  std::vector<double> gather_positions() const;

  /// Particles that crossed a rank boundary in the last step.
  std::int64_t last_migrations() const { return last_migrations_; }

  /// Cumulative traffic counters of the solver's communicator (boundary
  /// merges, Thomas pipeline hops, phi ghosts, particle migration). Shared
  /// accounting with every other subsystem — see docs/communication.md.
  const comm::CommStats& comm_stats() const { return comm_.stats(); }
  const comm::Communicator& communicator() const { return comm_; }

  /// Optional performance co-simulation on ranks [0, num_parts).
  void attach_cluster(sim::Cluster* cluster);

  /// Split-phase overlap of the Thomas pipeline (docs/communication.md):
  /// each rank precomputes its right-hand side (rho * h^2 per unknown)
  /// while the elimination carry from its left neighbour is in flight, so
  /// the co-simulated cluster hides that prep time behind the hop
  /// (Cluster::send_overlapped). Pure code motion on the host: the same
  /// products feed the same recurrence, so the fields are bitwise
  /// identical in both modes.
  void set_overlap(bool on) { overlap_ = on; }
  bool overlap() const { return overlap_; }

  /// The persisted RNG stream position (mirrors Pic::rng_counter).
  std::uint64_t rng_counter() const { return rng_.counter(); }

  /// Snapshot section "simpic/distributed" (docs/checkpoint.md): per-rank
  /// particle and field arrays, the ion background, the migration counter,
  /// and the RNG stream position. The decomposition, communicator, and all
  /// exchange scratch are rebuilt by the constructor, so restore only
  /// validates them. Throws CheckError on option mismatch or corruption.
  void serialize(ckpt::Writer& w) const;
  void restore(ckpt::Reader& r);

 private:
  struct RankState {
    // Node slice [node_begin, node_end] inclusive; interior ranks share
    // their boundary nodes with their neighbours.
    std::int64_t node_begin = 0;
    std::int64_t node_end = 0;
    double x_lo = 0.0;  ///< owned particle interval [x_lo, x_hi)
    double x_hi = 0.0;

    std::vector<double> x;
    std::vector<double> v;
    std::vector<double> w;

    std::vector<double> rho;  ///< local nodes (node_end - node_begin + 1)
    std::vector<double> phi;
    std::vector<double> e;
  };

  int owner_of(double x) const;
  void deposit();
  void solve_field();
  void push_and_migrate();

  PicOptions options_;
  double dx_;  ///< derived from options, rebuilt // cpx-lint: allow(ckpt)
  double background_ = 0.0;
  CounterRng rng_;
  std::vector<RankState> ranks_;
  comm::Communicator comm_;  ///< rebuilt by ctor // cpx-lint: allow(ckpt)
  // Receive scratch, one slot per rank (sized once in the constructor so
  // the steady-state exchange stays allocation-free). Deliberately outside
  // the snapshot: the constructor rebuilds it.
  std::vector<double> rho_from_left_;    // cpx-lint: allow(ckpt)
  std::vector<double> rho_from_right_;   // cpx-lint: allow(ckpt)
  std::vector<double> phi_shared_recv_;  // cpx-lint: allow(ckpt)
  std::vector<double> ghost_from_left_;  // cpx-lint: allow(ckpt)
  std::vector<double> ghost_from_right_; // cpx-lint: allow(ckpt)
  std::vector<std::vector<double>> migr_pack_;    // cpx-lint: allow(ckpt)
  std::vector<std::vector<double>> rhs_scratch_;  // cpx-lint: allow(ckpt)
  std::vector<sim::Message> message_scratch_;     // cpx-lint: allow(ckpt)
  std::int64_t last_migrations_ = 0;
  bool overlap_ = false;
  sim::Cluster* cluster_ = nullptr;  // attached // cpx-lint: allow(ckpt)
  sim::RegionId region_deposit_ = -1;  // cpx-lint: allow(ckpt)
  sim::RegionId region_field_ = -1;    // cpx-lint: allow(ckpt)
  sim::RegionId region_push_ = -1;     // cpx-lint: allow(ckpt)
  sim::RegionId region_migrate_ = -1;  // cpx-lint: allow(ckpt)
};

}  // namespace cpx::simpic
