#pragma once
// Algorithm 1 of the paper: greedy distribution of a core budget over the
// coupled components (application instances and coupler units).
//
// Initial runtimes come from per-app scaling curves (curve.hpp) scaled by
// problem size and iteration count relative to the benchmarked base case.
// Each loop iteration compares the runtime reduction of granting one core
// to the slowest application instance vs the slowest coupler unit and
// takes the larger; the predicted runtime of the coupled simulation is
//     max over apps + max over coupler units
// because the schedule serialises on the slowest member of each class.
//
// Improvements over the HiPC'21 model are reflected here: every instance
// carries its own mesh/interface size and iteration count, so allocation
// is per-instance rather than per-class.

#include <span>
#include <string>
#include <vector>

#include "perfmodel/curve.hpp"

namespace cpx::perfmodel {

/// One allocatable component (application instance or coupler unit).
struct InstanceModel {
  std::string name;
  ScalingCurve curve;  ///< runtime of the benchmarked base case
  /// Runtime multiplier vs the base case: size_ratio * iteration_ratio
  /// (Alg 1's first loops).
  double scale = 1.0;
  /// Floor on allocated ranks (the paper starts large problems at 100).
  int min_ranks = 1;
  /// Cap (e.g. a mesh cannot use more ranks than cells).
  int max_ranks = 1 << 30;

  double time(int cores) const;

  /// Convenience: derive the scale from base/actual size and iterations.
  static InstanceModel make(std::string name, ScalingCurve curve,
                            double base_size, double base_iters, double size,
                            double iters, int min_ranks = 1);
};

struct Allocation {
  std::vector<int> app_ranks;
  std::vector<int> cu_ranks;
  double app_time = 0.0;       ///< slowest application instance
  double cu_time = 0.0;        ///< slowest coupler unit
  double predicted_runtime = 0.0;  ///< app_time + cu_time
  int total_ranks = 0;
};

/// Runs Alg 1. Throws if the budget cannot cover the per-instance minima.
Allocation distribute_ranks(std::span<const InstanceModel> apps,
                            std::span<const InstanceModel> cus,
                            int total_ranks);

/// Deep validator (tier 2, support/check.hpp): the allocation is feasible —
/// one rank count per instance, every count within [min_ranks, max_ranks],
/// the total within budget — and the reported times match the models:
/// app_time/cu_time are the per-class maxima recomputed from the curves and
/// predicted_runtime is their sum. Runs automatically at the end of
/// distribute_ranks when check::deep() is on. Throws CheckError.
void validate_allocation(const Allocation& alloc,
                         std::span<const InstanceModel> apps,
                         std::span<const InstanceModel> cus,
                         int total_ranks);

}  // namespace cpx::perfmodel
