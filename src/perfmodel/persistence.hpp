#pragma once
// Persistence for calibrated performance models. Benchmarking every
// component of an engine case is cheap on the virtual cluster but would be
// hours of machine time on a real system — production use of the paper's
// methodology benchmarks once and reuses the fitted curves across planning
// sessions. The format is a line-based text table (one component per
// line) that round-trips exactly:
//
//   # cpx-perfmodel v1
//   app  <name> scale=<s> min=<m> max=<M> a=<a> b=<b> c=<c> d=<d>
//   cu   <name> scale=<s> min=<m> max=<M> a=<a> b=<b> c=<c> d=<d>

#include <iosfwd>
#include <string>
#include <vector>

#include "perfmodel/allocator.hpp"

namespace cpx::perfmodel {

/// A saved set of fitted component models (the workflow::CaseModels
/// payload, decoupled from the workflow module).
struct ModelSet {
  std::vector<InstanceModel> apps;
  std::vector<InstanceModel> cus;
};

void save_models(std::ostream& out, const ModelSet& models);
ModelSet load_models(std::istream& in);

void save_models_file(const std::string& path, const ModelSet& models);
ModelSet load_models_file(const std::string& path);

}  // namespace cpx::perfmodel
