#include "perfmodel/sweep.hpp"

#include "sim/cluster.hpp"
#include "support/check.hpp"

namespace cpx::perfmodel {

double measure_step_seconds(sim::App& app, sim::Cluster& cluster, int steps) {
  CPX_REQUIRE(steps >= 1, "measure_step_seconds: bad step count");
  app.step(cluster);  // warm-up (one-off mapping costs, cold clocks)
  const double t0 = cluster.max_clock(app.ranks());
  for (int s = 0; s < steps; ++s) {
    app.step(cluster);
  }
  return (cluster.max_clock(app.ranks()) - t0) / steps;
}

CommVolume measure_comm_volume(sim::App& app, sim::Cluster& cluster,
                               int steps) {
  CPX_REQUIRE(steps >= 1, "measure_comm_volume: bad step count");
  app.step(cluster);  // warm-up (one-off mapping / plan setup traffic)
  const std::size_t bytes0 = cluster.comm_bytes(app.ranks());
  const std::int64_t messages0 = cluster.comm_messages(app.ranks());
  for (int s = 0; s < steps; ++s) {
    app.step(cluster);
  }
  CommVolume volume;
  volume.bytes =
      (cluster.comm_bytes(app.ranks()) - bytes0) /
      static_cast<std::size_t>(steps);
  volume.messages = (cluster.comm_messages(app.ranks()) - messages0) / steps;
  return volume;
}

std::vector<ScalingPoint> measure_scaling(const AppFactory& factory,
                                          const sim::MachineModel& machine,
                                          std::span<const int> core_counts,
                                          int steps) {
  std::vector<ScalingPoint> points;
  points.reserve(core_counts.size());
  for (int cores : core_counts) {
    CPX_REQUIRE(cores >= 1, "measure_scaling: bad core count " << cores);
    sim::Cluster cluster(machine, cores);
    const auto app = factory({0, cores});
    points.push_back({static_cast<double>(cores),
                      measure_step_seconds(*app, cluster, steps)});
  }
  return points;
}

ScalingCurve fit_scaling(const AppFactory& factory,
                         const sim::MachineModel& machine,
                         std::span<const int> core_counts, int steps) {
  const auto points = measure_scaling(factory, machine, core_counts, steps);
  return ScalingCurve::fit(points);
}

OverlapVariants fit_overlap_variants(const AppFactory& factory,
                                     const sim::MachineModel& machine,
                                     std::span<const int> core_counts,
                                     int steps) {
  CPX_REQUIRE(!core_counts.empty(), "fit_overlap_variants: no core counts");
  OverlapVariants variants;
  for (const bool overlapped : {false, true}) {
    std::vector<ScalingPoint> points;
    points.reserve(core_counts.size());
    for (int cores : core_counts) {
      CPX_REQUIRE(cores >= 1,
                  "fit_overlap_variants: bad core count " << cores);
      sim::Cluster cluster(machine, cores);
      const auto app = factory({0, cores});
      app->set_overlap(overlapped);
      points.push_back({static_cast<double>(cores),
                        measure_step_seconds(*app, cluster, steps)});
      if (overlapped && cores == core_counts.back()) {
        const double hidden =
            cluster.comm_hidden_seconds(app->ranks());
        double charged = 0.0;
        for (sim::Rank r = app->ranks().begin; r < app->ranks().end; ++r) {
          charged += cluster.profile().rank_total(r).comm;
        }
        variants.hidden_fraction =
            hidden + charged > 0.0 ? hidden / (hidden + charged) : 0.0;
      }
    }
    (overlapped ? variants.overlapped : variants.synchronous) =
        ScalingCurve::fit(points);
  }
  return variants;
}

}  // namespace cpx::perfmodel
