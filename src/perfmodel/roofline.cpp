#include "perfmodel/roofline.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>

#include "support/check.hpp"

namespace cpx::perfmodel {

double RooflineMachine::ridge_intensity() const {
  return peak_gbs > 0.0 ? peak_gflops / peak_gbs : 0.0;
}

double RooflineMachine::attainable_gflops(double intensity) const {
  return std::min(peak_gflops, peak_gbs * intensity);
}

RooflinePoint classify(const KernelSample& sample,
                       const RooflineMachine& machine) {
  RooflinePoint p;
  p.name = sample.name;
  if (sample.bytes > 0) {
    p.intensity =
        static_cast<double>(sample.flops) / static_cast<double>(sample.bytes);
  }
  if (sample.seconds > 0.0) {
    p.gflops = static_cast<double>(sample.flops) / sample.seconds * 1e-9;
    p.gbs = static_cast<double>(sample.bytes) / sample.seconds * 1e-9;
  }
  p.ceiling_gflops = machine.attainable_gflops(p.intensity);
  if (p.ceiling_gflops > 0.0) {
    p.fraction_of_roof = p.gflops / p.ceiling_gflops;
  }
  p.memory_bound = p.intensity < machine.ridge_intensity();
  return p;
}

double roofline_seconds(std::int64_t flops, std::int64_t bytes,
                        const RooflineMachine& machine) {
  CPX_REQUIRE(machine.peak_gflops > 0.0 && machine.peak_gbs > 0.0,
              "roofline_seconds: machine ceilings must be positive");
  const double compute_s =
      static_cast<double>(flops) / (machine.peak_gflops * 1e9);
  const double memory_s =
      static_cast<double>(bytes) / (machine.peak_gbs * 1e9);
  return std::max(compute_s, memory_s);
}

namespace {

/// Kernel names come from the metrics registry (plain ASCII identifiers),
/// so escaping only needs the JSON-mandatory characters.
void put_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\';
    }
    os << c;
  }
}

}  // namespace

void write_roofline_json(std::ostream& out, const RooflineMachine& machine,
                         std::span<const KernelSample> samples) {
  out << std::setprecision(17);
  out << "{\n  \"schema\": \"cpx-roofline-v1\",\n"
      << "  \"machine\": {\"peak_gflops\": " << machine.peak_gflops
      << ", \"peak_gbs\": " << machine.peak_gbs
      << ", \"ridge_intensity\": " << machine.ridge_intensity() << "},\n"
      << "  \"kernels\": [";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const KernelSample& s = samples[i];
    const RooflinePoint p = classify(s, machine);
    out << (i == 0 ? "\n" : ",\n") << "    {\"name\": \"";
    put_escaped(out, s.name);
    out << "\", \"flops\": " << s.flops << ", \"bytes\": " << s.bytes
        << ", \"seconds\": " << s.seconds
        << ", \"intensity\": " << p.intensity
        << ", \"gflops\": " << p.gflops << ", \"gbs\": " << p.gbs
        << ", \"ceiling_gflops\": " << p.ceiling_gflops
        << ", \"fraction_of_roof\": " << p.fraction_of_roof
        << ", \"memory_bound\": " << (p.memory_bound ? "true" : "false");
    if (s.scalar_seconds > 0.0 && s.seconds > 0.0) {
      out << ", \"scalar_seconds\": " << s.scalar_seconds
          << ", \"speedup_vs_scalar\": " << s.scalar_seconds / s.seconds;
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
}

}  // namespace cpx::perfmodel
