#include "perfmodel/allocator.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace cpx::perfmodel {

double InstanceModel::time(int cores) const {
  return scale * curve.time_at(static_cast<double>(cores));
}

InstanceModel InstanceModel::make(std::string name, ScalingCurve curve,
                                  double base_size, double base_iters,
                                  double size, double iters, int min_ranks) {
  CPX_REQUIRE(base_size > 0.0 && base_iters > 0.0,
              "InstanceModel::make: bad base case");
  InstanceModel m;
  m.name = std::move(name);
  m.curve = std::move(curve);
  m.scale = (size / base_size) * (iters / base_iters);
  m.min_ranks = min_ranks;
  return m;
}

namespace {

/// Index of the slowest component at the current allocation, or -1 when
/// the list is empty.
int slowest(std::span<const InstanceModel> models,
            const std::vector<int>& ranks) {
  int worst = -1;
  double worst_time = -1.0;
  for (std::size_t i = 0; i < models.size(); ++i) {
    const double t = models[i].time(ranks[i]);
    if (t > worst_time) {
      worst_time = t;
      worst = static_cast<int>(i);
    }
  }
  return worst;
}

/// Runtime reduction from granting one more core to component `i`
/// (zero when the component is at its rank cap).
double gain(const InstanceModel& m, int cores) {
  if (cores + 1 > m.max_ranks) {
    return 0.0;
  }
  return m.time(cores) - m.time(cores + 1);
}

}  // namespace

Allocation distribute_ranks(std::span<const InstanceModel> apps,
                            std::span<const InstanceModel> cus,
                            int total_ranks) {
  CPX_REQUIRE(!apps.empty(), "distribute_ranks: no application instances");
  Allocation alloc;
  alloc.app_ranks.reserve(apps.size());
  alloc.cu_ranks.reserve(cus.size());

  int used = 0;
  for (const InstanceModel& m : apps) {
    CPX_REQUIRE(m.min_ranks >= 1 && m.min_ranks <= m.max_ranks,
                "distribute_ranks: bad rank bounds for " << m.name);
    alloc.app_ranks.push_back(m.min_ranks);
    used += m.min_ranks;
  }
  for (const InstanceModel& m : cus) {
    CPX_REQUIRE(m.min_ranks >= 1 && m.min_ranks <= m.max_ranks,
                "distribute_ranks: bad rank bounds for " << m.name);
    alloc.cu_ranks.push_back(m.min_ranks);
    used += m.min_ranks;
  }
  CPX_REQUIRE(used <= total_ranks,
              "distribute_ranks: budget " << total_ranks
                                          << " below the minima " << used);

  for (int remaining = total_ranks - used; remaining > 0; --remaining) {
    const int app_i = slowest(apps, alloc.app_ranks);
    const int cu_i = cus.empty() ? -1 : slowest(cus, alloc.cu_ranks);
    const double app_gain =
        app_i >= 0 ? gain(apps[static_cast<std::size_t>(app_i)],
                          alloc.app_ranks[static_cast<std::size_t>(app_i)])
                   : 0.0;
    const double cu_gain =
        cu_i >= 0 ? gain(cus[static_cast<std::size_t>(cu_i)],
                         alloc.cu_ranks[static_cast<std::size_t>(cu_i)])
                  : 0.0;
    if (cu_i >= 0 && cu_gain > app_gain && cu_gain > 0.0) {
      ++alloc.cu_ranks[static_cast<std::size_t>(cu_i)];
    } else if (app_gain > 0.0) {
      ++alloc.app_ranks[static_cast<std::size_t>(app_i)];
    } else if (cu_i >= 0 && cu_gain > 0.0) {
      ++alloc.cu_ranks[static_cast<std::size_t>(cu_i)];
    } else {
      // Every component is at its cap or past its scaling optimum; the
      // leftover budget has nowhere useful to go (the paper observes the
      // same with the Base-STC case at 40k cores).
      break;
    }
  }

  alloc.app_time = 0.0;
  for (std::size_t i = 0; i < apps.size(); ++i) {
    alloc.app_time =
        std::max(alloc.app_time, apps[i].time(alloc.app_ranks[i]));
  }
  alloc.cu_time = 0.0;
  for (std::size_t i = 0; i < cus.size(); ++i) {
    alloc.cu_time = std::max(alloc.cu_time, cus[i].time(alloc.cu_ranks[i]));
  }
  alloc.predicted_runtime = alloc.app_time + alloc.cu_time;
  alloc.total_ranks = total_ranks;
  if (check::deep()) {
    validate_allocation(alloc, apps, cus, total_ranks);
  }
  return alloc;
}

void validate_allocation(const Allocation& alloc,
                         std::span<const InstanceModel> apps,
                         std::span<const InstanceModel> cus,
                         int total_ranks) {
  CPX_CHECK_MSG(alloc.app_ranks.size() == apps.size() &&
                    alloc.cu_ranks.size() == cus.size(),
                "allocation does not cover every instance");
  int used = 0;
  double app_time = 0.0;
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const int r = alloc.app_ranks[i];
    CPX_CHECK_MSG(r >= apps[i].min_ranks && r <= apps[i].max_ranks,
                  "app " << apps[i].name << " allocated " << r
                         << " ranks outside [" << apps[i].min_ranks << ", "
                         << apps[i].max_ranks << "]");
    used += r;
    app_time = std::max(app_time, apps[i].time(r));
  }
  double cu_time = 0.0;
  for (std::size_t i = 0; i < cus.size(); ++i) {
    const int r = alloc.cu_ranks[i];
    CPX_CHECK_MSG(r >= cus[i].min_ranks && r <= cus[i].max_ranks,
                  "coupler unit " << cus[i].name << " allocated " << r
                                  << " ranks outside [" << cus[i].min_ranks
                                  << ", " << cus[i].max_ranks << "]");
    used += r;
    cu_time = std::max(cu_time, cus[i].time(r));
  }
  CPX_CHECK_MSG(used <= total_ranks, "allocation uses " << used
                                                        << " ranks, budget is "
                                                        << total_ranks);
  CPX_CHECK_MSG(alloc.app_time == app_time && alloc.cu_time == cu_time,
                "reported class times do not match the scaling curves");
  CPX_CHECK_MSG(alloc.predicted_runtime == alloc.app_time + alloc.cu_time,
                "predicted runtime is not app_time + cu_time");
}

}  // namespace cpx::perfmodel
