#include "perfmodel/persistence.hpp"

#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "support/check.hpp"

namespace cpx::perfmodel {
namespace {

constexpr const char* kHeader = "# cpx-perfmodel v1";

void save_one(std::ostream& out, const char* tag, const InstanceModel& m) {
  // The format is whitespace-delimited; a name containing whitespace would
  // save fine and then fail to load (its second word would be parsed as
  // the scale= token). Refuse it at save time rather than corrupt.
  CPX_REQUIRE(!m.name.empty(), "save_models: component has an empty name");
  CPX_REQUIRE(m.name.find_first_of(" \t\r\n") == std::string::npos,
              "save_models: component name '"
                  << m.name << "' contains whitespace and would not "
                               "round-trip the line-based model format");
  const auto& c = m.curve.coefficients();
  out << tag << " " << m.name << " scale=" << m.scale << " min=" << m.min_ranks
      << " max=" << m.max_ranks << " a=" << c[0] << " b=" << c[1]
      << " c=" << c[2] << " d=" << c[3] << "\n";
}

double kv_double(const std::string& token, const char* key, int line_no) {
  const std::string prefix = std::string(key) + "=";
  CPX_REQUIRE(token.rfind(prefix, 0) == 0,
              "model file line " << line_no << ": expected " << key
                                 << "=..., got '" << token << "'");
  const std::string text = token.substr(prefix.size());
  // Strict parse: the whole value must be one finite number (std::stod
  // would silently accept trailing junk like "scale=1x").
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  CPX_REQUIRE(!text.empty() && end == text.c_str() + text.size() &&
                  errno != ERANGE && std::isfinite(v),
              "model file line " << line_no << ": bad number in '" << token
                                 << "'");
  return v;
}

int kv_rank_bound(double value, const char* key, int line_no) {
  CPX_REQUIRE(value >= 1.0 && value <= static_cast<double>(INT_MAX) &&
                  value == std::floor(value),
              "model file line " << line_no << ": " << key << "=" << value
                                 << " is not a positive integer rank bound");
  return static_cast<int>(value);
}

InstanceModel load_one(const std::string& line, int line_no) {
  std::istringstream iss(line);
  std::string tag;
  InstanceModel m;
  std::string tok;
  iss >> tag >> m.name;
  CPX_REQUIRE(!m.name.empty(),
              "model file line " << line_no << ": missing component name");
  const char* keys[] = {"scale", "min", "max", "a", "b", "c", "d"};
  double values[7] = {};
  for (int k = 0; k < 7; ++k) {
    CPX_REQUIRE(static_cast<bool>(iss >> tok),
                "model file line " << line_no << ": missing " << keys[k]);
    values[k] = kv_double(tok, keys[k], line_no);
  }
  CPX_REQUIRE(!(iss >> tok), "model file line "
                                 << line_no << ": trailing token '" << tok
                                 << "' after d=");
  CPX_REQUIRE(values[0] > 0.0, "model file line "
                                   << line_no << ": scale=" << values[0]
                                   << " must be positive");
  m.scale = values[0];
  m.min_ranks = kv_rank_bound(values[1], "min", line_no);
  m.max_ranks = kv_rank_bound(values[2], "max", line_no);
  CPX_REQUIRE(m.min_ranks <= m.max_ranks,
              "model file line " << line_no << ": min=" << m.min_ranks
                                 << " exceeds max=" << m.max_ranks);
  m.curve = ScalingCurve::from_coefficients(
      {values[3], values[4], values[5], values[6]});
  return m;
}

}  // namespace

void save_models(std::ostream& out, const ModelSet& models) {
  out << kHeader << "\n" << std::setprecision(17);
  for (const InstanceModel& m : models.apps) {
    save_one(out, "app", m);
  }
  for (const InstanceModel& m : models.cus) {
    save_one(out, "cu", m);
  }
}

ModelSet load_models(std::istream& in) {
  ModelSet models;
  std::string line;
  int line_no = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      saw_header = saw_header || line == kHeader;
      continue;
    }
    if (line.rfind("app ", 0) == 0) {
      models.apps.push_back(load_one(line, line_no));
    } else if (line.rfind("cu ", 0) == 0) {
      models.cus.push_back(load_one(line, line_no));
    } else {
      CPX_REQUIRE(false, "model file line " << line_no
                                            << ": expected 'app' or 'cu'");
    }
  }
  CPX_REQUIRE(saw_header, "model file: missing '" << kHeader << "' header");
  return models;
}

void save_models_file(const std::string& path, const ModelSet& models) {
  std::ofstream out(path);
  CPX_REQUIRE(out.good(), "save_models_file: cannot open " << path);
  save_models(out, models);
}

ModelSet load_models_file(const std::string& path) {
  std::ifstream in(path);
  CPX_REQUIRE(in.good(), "load_models_file: cannot open " << path);
  return load_models(in);
}

}  // namespace cpx::perfmodel
