#include "perfmodel/persistence.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "support/check.hpp"

namespace cpx::perfmodel {
namespace {

constexpr const char* kHeader = "# cpx-perfmodel v1";

void save_one(std::ostream& out, const char* tag, const InstanceModel& m) {
  const auto& c = m.curve.coefficients();
  out << tag << " " << m.name << " scale=" << m.scale << " min=" << m.min_ranks
      << " max=" << m.max_ranks << " a=" << c[0] << " b=" << c[1]
      << " c=" << c[2] << " d=" << c[3] << "\n";
}

double kv_double(const std::string& token, const char* key, int line_no) {
  const std::string prefix = std::string(key) + "=";
  CPX_REQUIRE(token.rfind(prefix, 0) == 0,
              "model file line " << line_no << ": expected " << key
                                 << "=..., got '" << token << "'");
  try {
    return std::stod(token.substr(prefix.size()));
  } catch (const std::exception&) {
    CPX_REQUIRE(false, "model file line " << line_no << ": bad number in '"
                                          << token << "'");
  }
  return 0.0;
}

InstanceModel load_one(const std::string& line, int line_no) {
  std::istringstream iss(line);
  std::string tag;
  InstanceModel m;
  std::string tok;
  iss >> tag >> m.name;
  CPX_REQUIRE(!m.name.empty(),
              "model file line " << line_no << ": missing component name");
  const char* keys[] = {"scale", "min", "max", "a", "b", "c", "d"};
  double values[7] = {};
  for (int k = 0; k < 7; ++k) {
    CPX_REQUIRE(static_cast<bool>(iss >> tok),
                "model file line " << line_no << ": missing " << keys[k]);
    values[k] = kv_double(tok, keys[k], line_no);
  }
  m.scale = values[0];
  m.min_ranks = static_cast<int>(values[1]);
  m.max_ranks = static_cast<int>(values[2]);
  m.curve = ScalingCurve::from_coefficients(
      {values[3], values[4], values[5], values[6]});
  return m;
}

}  // namespace

void save_models(std::ostream& out, const ModelSet& models) {
  out << kHeader << "\n" << std::setprecision(17);
  for (const InstanceModel& m : models.apps) {
    save_one(out, "app", m);
  }
  for (const InstanceModel& m : models.cus) {
    save_one(out, "cu", m);
  }
}

ModelSet load_models(std::istream& in) {
  ModelSet models;
  std::string line;
  int line_no = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      saw_header = saw_header || line == kHeader;
      continue;
    }
    if (line.rfind("app ", 0) == 0) {
      models.apps.push_back(load_one(line, line_no));
    } else if (line.rfind("cu ", 0) == 0) {
      models.cus.push_back(load_one(line, line_no));
    } else {
      CPX_REQUIRE(false, "model file line " << line_no
                                            << ": expected 'app' or 'cu'");
    }
  }
  CPX_REQUIRE(saw_header, "model file: missing '" << kHeader << "' header");
  return models;
}

void save_models_file(const std::string& path, const ModelSet& models) {
  std::ofstream out(path);
  CPX_REQUIRE(out.good(), "save_models_file: cannot open " << path);
  save_models(out, models);
}

ModelSet load_models_file(const std::string& path) {
  std::ifstream in(path);
  CPX_REQUIRE(in.good(), "load_models_file: cannot open " << path);
  return load_models(in);
}

}  // namespace cpx::perfmodel
