#include "perfmodel/curve.hpp"

#include <array>
#include <cmath>

#include "support/check.hpp"
#include "support/lsq.hpp"

namespace cpx::perfmodel {
namespace {

constexpr int kNumBases = 4;

double basis_value(int j, double p) {
  switch (j) {
    case 0:
      return 1.0 / p;
    case 1:
      return 1.0;
    case 2:
      return std::log2(std::max(p, 1.0));
    default:
      return p;
  }
}

}  // namespace

ScalingCurve ScalingCurve::fit(std::span<const ScalingPoint> points) {
  CPX_REQUIRE(points.size() >= 2, "ScalingCurve::fit: need >= 2 points");
  for (const ScalingPoint& pt : points) {
    CPX_REQUIRE(pt.cores >= 1.0 && pt.seconds > 0.0,
                "ScalingCurve::fit: bad point (" << pt.cores << ", "
                                                 << pt.seconds << ")");
  }

  // Non-negative least squares by exhaustive enumeration of the 15
  // non-empty basis subsets: fit each subset unconstrained, keep the
  // feasible (all-non-negative) fit with the smallest weighted residual.
  // With only four bases this is both trivial and globally optimal over
  // vertex solutions — unlike one-way pruning, which can permanently drop
  // a basis the final fit needs.
  ScalingCurve curve;
  double best_sse = -1.0;
  const std::size_t m = points.size();
  for (int mask = 1; mask < (1 << kNumBases); ++mask) {
    std::vector<int> cols;
    for (int j = 0; j < kNumBases; ++j) {
      if (mask & (1 << j)) {
        cols.push_back(j);
      }
    }
    const std::size_t n = cols.size();
    if (m < n) {
      continue;
    }
    std::vector<double> a(m * n);
    std::vector<double> b(m);
    for (std::size_t r = 0; r < m; ++r) {
      // Relative-error weighting.
      const double w = 1.0 / points[r].seconds;
      for (std::size_t c = 0; c < n; ++c) {
        a[r * n + c] = w * basis_value(cols[c], points[r].cores);
      }
      b[r] = w * points[r].seconds;
    }
    // Column equilibration: the bases span ~15 orders of magnitude between
    // 1/p and p at large core counts; without scaling, the solver's ridge
    // (relative to the largest diagonal) crushes the small columns.
    std::vector<double> col_scale(n, 0.0);
    for (std::size_t c = 0; c < n; ++c) {
      for (std::size_t r = 0; r < m; ++r) {
        col_scale[c] = std::max(col_scale[c], std::abs(a[r * n + c]));
      }
      if (col_scale[c] == 0.0) {
        col_scale[c] = 1.0;
      }
      for (std::size_t r = 0; r < m; ++r) {
        a[r * n + c] /= col_scale[c];
      }
    }
    std::vector<double> sol = solve_normal_equations(a, m, n, b, 1e-10);
    for (std::size_t c = 0; c < n; ++c) {
      sol[c] /= col_scale[c];
    }
    bool feasible = true;
    for (double v : sol) {
      feasible = feasible && v >= 0.0;
    }
    if (!feasible) {
      continue;
    }
    double sse = 0.0;
    for (std::size_t r = 0; r < m; ++r) {
      double fit = 0.0;
      for (std::size_t c = 0; c < n; ++c) {
        fit += sol[c] * basis_value(cols[c], points[r].cores);
      }
      const double res = (fit - points[r].seconds) / points[r].seconds;
      sse += res * res;
    }
    if (best_sse < 0.0 || sse < best_sse) {
      best_sse = sse;
      curve.coefs_ = {0.0, 0.0, 0.0, 0.0};
      for (std::size_t c = 0; c < n; ++c) {
        curve.coefs_[static_cast<std::size_t>(cols[c])] = sol[c];
      }
    }
  }
  // Degenerate fallback (all subsets infeasible): pure 1/p through the
  // first point.
  if (best_sse < 0.0) {
    curve.coefs_ = {points[0].seconds * points[0].cores, 0.0, 0.0, 0.0};
  }

  for (const ScalingPoint& pt : points) {
    const double err =
        std::abs(curve.time_at(pt.cores) - pt.seconds) / pt.seconds;
    curve.max_fit_error_ = std::max(curve.max_fit_error_, err);
  }
  return curve;
}

ScalingCurve ScalingCurve::from_coefficients(
    const std::vector<double>& coefs) {
  CPX_REQUIRE(coefs.size() == kNumBases,
              "from_coefficients: expected " << kNumBases << " values");
  for (double v : coefs) {
    CPX_REQUIRE(v >= 0.0, "from_coefficients: negative coefficient");
  }
  ScalingCurve curve;
  curve.coefs_ = coefs;
  return curve;
}

double ScalingCurve::time_at(double cores) const {
  CPX_REQUIRE(cores >= 1.0, "time_at: bad core count " << cores);
  double t = 0.0;
  for (int j = 0; j < kNumBases; ++j) {
    t += coefs_[static_cast<std::size_t>(j)] * basis_value(j, cores);
  }
  return std::max(t, 1e-12);
}

double ScalingCurve::efficiency_at(double cores, double base_cores) const {
  return (time_at(base_cores) * base_cores) / (time_at(cores) * cores);
}

double loocv_relative_error(std::span<const ScalingPoint> points) {
  CPX_REQUIRE(points.size() >= 3, "loocv: need >= 3 points");
  double total = 0.0;
  for (std::size_t held = 0; held < points.size(); ++held) {
    std::vector<ScalingPoint> rest;
    rest.reserve(points.size() - 1);
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (i != held) {
        rest.push_back(points[i]);
      }
    }
    const ScalingCurve curve = ScalingCurve::fit(rest);
    total += std::abs(curve.time_at(points[held].cores) -
                      points[held].seconds) /
             points[held].seconds;
  }
  return total / static_cast<double>(points.size());
}

}  // namespace cpx::perfmodel
