#pragma once
// Roofline accounting for the SIMD kernel layer (ROADMAP item 4).
//
// The hot kernels count their useful flops and streamed bytes through the
// metrics counters ("blas1/flops", "sparse/spmv_flops", ...). Dividing
// the two gives each kernel's arithmetic intensity I = flops/bytes, and
// timing a run places it on the roofline of Williams et al.:
//
//     attainable GFLOP/s = min(peak_gflops, peak_gbs * I)
//
// Kernels left of the ridge point (I < peak_gflops / peak_gbs) are
// memory-bound — more SIMD lanes cannot help once the bandwidth ceiling
// is hit, which is exactly the saturation behaviour the paper's scaling
// study observes for the sparse solver kernels. The bench/roofline tool
// measures machine ceilings with micro-kernels, samples every counted
// kernel, and emits the `cpx-roofline-v1` JSON document this header
// models (methodology: docs/observability.md).

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>

namespace cpx::perfmodel {

/// Measured (or assumed) ceilings of one host.
struct RooflineMachine {
  double peak_gflops = 0.0;  ///< compute ceiling, GFLOP/s
  double peak_gbs = 0.0;     ///< memory bandwidth ceiling, GB/s

  /// Arithmetic intensity (flop/byte) where the bandwidth slope meets the
  /// compute ceiling. Kernels below it are memory-bound.
  double ridge_intensity() const;

  /// Attainable GFLOP/s at intensity I: min(peak, bandwidth * I).
  double attainable_gflops(double intensity) const;
};

/// One timed kernel execution with its counted work.
struct KernelSample {
  std::string name;
  std::int64_t flops = 0;  ///< useful floating-point operations
  std::int64_t bytes = 0;  ///< streamed bytes (model, not hardware counts)
  double seconds = 0.0;    ///< measured wall time
  /// Wall time of the same run at simd width 1 (CPX_SIMD=off); 0 when not
  /// measured. The JSON gains "speedup_vs_scalar" when present.
  double scalar_seconds = 0.0;
};

/// The sample's position on the roofline.
struct RooflinePoint {
  std::string name;
  double intensity = 0.0;         ///< flops / bytes
  double gflops = 0.0;            ///< achieved flops / seconds
  double gbs = 0.0;               ///< achieved bytes / seconds
  double ceiling_gflops = 0.0;    ///< attainable at this intensity
  double fraction_of_roof = 0.0;  ///< achieved / attainable
  bool memory_bound = false;      ///< intensity < ridge
};

/// Places a sample on the machine's roofline. Samples with zero bytes,
/// flops, or time yield zeroed derived fields rather than dividing by 0.
RooflinePoint classify(const KernelSample& sample,
                       const RooflineMachine& machine);

/// Roofline time prediction for a kernel: the slower of draining the
/// bytes at peak bandwidth and retiring the flops at peak compute. The
/// perfmodel sweeps use it as a single-core floor for counted kernels.
double roofline_seconds(std::int64_t flops, std::int64_t bytes,
                        const RooflineMachine& machine);

/// Writes the `cpx-roofline-v1` JSON document: the machine ceilings plus
/// one entry per sample with raw counts and derived roofline coordinates.
void write_roofline_json(std::ostream& out, const RooflineMachine& machine,
                         std::span<const KernelSample> samples);

}  // namespace cpx::perfmodel
