#pragma once
// Standalone benchmark sweeps: run a mini-app instance alone on a fresh
// virtual cluster across core counts and record per-step runtimes — the
// data the empirical model fits its curves to (Fig 7's left-hand column).

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "perfmodel/curve.hpp"
#include "sim/app.hpp"
#include "sim/machine.hpp"

namespace cpx::perfmodel {

/// Builds an instance of the app under test on the given rank range.
using AppFactory =
    std::function<std::unique_ptr<sim::App>(sim::RankRange ranks)>;

/// Mean per-step virtual runtime over `steps` steps after one warm-up
/// step (the first step can include one-off costs such as steady-state
/// interface mapping).
double measure_step_seconds(sim::App& app, sim::Cluster& cluster, int steps);

/// Measured communication volume (docs/communication.md).
struct CommVolume {
  std::size_t bytes = 0;
  std::int64_t messages = 0;
};

/// Mean per-step bytes/messages the app's ranks inject, measured over
/// `steps` steps after one warm-up step, from the cluster's per-rank
/// traffic counters. This is what the comm layer actually moved — real
/// message sizes, not per-site estimates — so predicted coupling cost can
/// be driven by measured volume.
CommVolume measure_comm_volume(sim::App& app, sim::Cluster& cluster,
                               int steps);

/// Sweeps the app over `core_counts`, each on a dedicated cluster.
std::vector<ScalingPoint> measure_scaling(const AppFactory& factory,
                                          const sim::MachineModel& machine,
                                          std::span<const int> core_counts,
                                          int steps = 3);

/// Convenience: sweep then fit.
ScalingCurve fit_scaling(const AppFactory& factory,
                         const sim::MachineModel& machine,
                         std::span<const int> core_counts, int steps = 3);

/// Paired fits of the same app with split-phase overlap off and on
/// (sim::App::set_overlap), so the capacity planner can predict the
/// parallel-efficiency gain of overlapping per scenario instead of
/// extrapolating it (docs/CALIBRATION.md).
struct OverlapVariants {
  ScalingCurve synchronous;
  ScalingCurve overlapped;
  /// Hidden / (hidden + charged) comm seconds at the largest measured
  /// core count — how much of the synchronous wait the window absorbed.
  double hidden_fraction = 0.0;

  /// Modelled PE gain of overlapping at `cores`:
  /// overlapped efficiency minus synchronous efficiency, both vs
  /// `base_cores`.
  double efficiency_gain_at(double cores, double base_cores) const {
    return overlapped.efficiency_at(cores, base_cores) -
           synchronous.efficiency_at(cores, base_cores);
  }
};

OverlapVariants fit_overlap_variants(const AppFactory& factory,
                                     const sim::MachineModel& machine,
                                     std::span<const int> core_counts,
                                     int steps = 3);

}  // namespace cpx::perfmodel
