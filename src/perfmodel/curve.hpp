#pragma once
// Runtime scaling curves for the empirical performance model (§V).
//
// The model benchmarks each mini-app standalone across core counts,
// producing (cores, seconds) points, and fits a curve so runtime can be
// evaluated at any core count. The curve family
//     T(p) = a/p + b + c*log2(p) + d*p
// covers the behaviours present in the coupled workload: parallel work
// (a/p), per-rank floors (b), collectives (c*log2 p), and serial chains /
// linear collectives (d*p). Coefficients are constrained non-negative —
// negative terms would make extrapolated runtimes dip or go negative —
// via iterated least squares with active-set pruning.

#include <span>
#include <vector>

namespace cpx::perfmodel {

struct ScalingPoint {
  double cores = 0.0;
  double seconds = 0.0;
};

/// Leave-one-out cross-validation of the curve family on a point set:
/// refits without each point in turn and returns the mean relative error
/// of predicting the held-out point — an honest estimate of the model's
/// *predictive* (not in-sample) accuracy. Needs >= 3 points.
double loocv_relative_error(std::span<const ScalingPoint> points);

class ScalingCurve {
 public:
  ScalingCurve() = default;

  /// Least-squares fit with non-negative coefficients; needs >= 2 points.
  /// Points are weighted by 1/seconds^2 so small (high-core) runtimes are
  /// fitted as accurately as large ones (relative error weighting).
  static ScalingCurve fit(std::span<const ScalingPoint> points);

  /// Predicted runtime at a core count (extrapolates beyond the data).
  double time_at(double cores) const;

  /// Parallel efficiency at `cores` relative to `base_cores`.
  double efficiency_at(double cores, double base_cores) const;

  /// Fitted coefficients {a, b, c, d} for T(p) = a/p + b + c*log2 p + d*p.
  const std::vector<double>& coefficients() const { return coefs_; }

  /// Largest relative error of the fit over the input points.
  double max_fit_error() const { return max_fit_error_; }

  /// Rebuilds a curve from stored coefficients {a, b, c, d} (persistence).
  static ScalingCurve from_coefficients(const std::vector<double>& coefs);

 private:
  std::vector<double> coefs_ = {0.0, 0.0, 0.0, 0.0};
  double max_fit_error_ = 0.0;
};

}  // namespace cpx::perfmodel
