#pragma once
// Donor search for coupling interfaces.
//
// Mapping an interface requires finding, for every target point, the
// nearest donor point on the other side. The original CPX/JM76 coupler
// used a brute-force search; the production coupler later adopted a
// tree-based search with prefetching, which the paper credits for cutting
// coupling overhead to <0.5% of runtime. Both are implemented here: the
// brute-force baseline and a k-d tree, with an ablation bench comparing
// them (bench_coupler_overhead).

#include <cstdint>
#include <vector>

#include "mesh/mesh.hpp"

namespace cpx::coupler {

/// Brute-force nearest neighbour: O(n) per query.
std::int64_t nearest_brute(const std::vector<mesh::Vec3>& points,
                           const mesh::Vec3& query);

/// Static k-d tree over a point set: O(log n) expected per query.
class KdTree {
 public:
  explicit KdTree(std::vector<mesh::Vec3> points);

  std::int64_t size() const {
    return static_cast<std::int64_t>(points_.size());
  }

  /// Index (into the constructor's point vector) of the nearest point.
  std::int64_t nearest(const mesh::Vec3& query) const;

  /// Number of nodes visited by the last nearest() call (for the
  /// complexity tests and the ablation bench).
  std::int64_t last_visited() const { return visited_; }

 private:
  struct Node {
    std::int64_t point = -1;    ///< index into points_
    int axis = 0;
    std::int64_t left = -1;     ///< node indices, -1 = leaf
    std::int64_t right = -1;
  };

  std::int64_t build(std::vector<std::int64_t>& idx, std::int64_t lo,
                     std::int64_t hi, int depth);
  void search(std::int64_t node, const mesh::Vec3& query,
              std::int64_t& best, double& best_d2) const;

  std::vector<mesh::Vec3> points_;
  std::vector<Node> nodes_;
  std::int64_t root_ = -1;
  mutable std::int64_t visited_ = 0;
};

double distance_squared(const mesh::Vec3& a, const mesh::Vec3& b);

}  // namespace cpx::coupler
