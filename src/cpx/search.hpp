#pragma once
// Donor search for coupling interfaces.
//
// Mapping an interface requires finding, for every target point, the
// nearest donor point on the other side. The original CPX/JM76 coupler
// used a brute-force search; the production coupler later adopted a
// tree-based search with prefetching, which the paper credits for cutting
// coupling overhead to <0.5% of runtime. Both are implemented here: the
// brute-force baseline and a k-d tree, with an ablation bench comparing
// them (bench_coupler_overhead).

#include <cstdint>
#include <span>
#include <vector>

#include "mesh/mesh.hpp"

namespace cpx::coupler {

/// Brute-force nearest neighbour: O(n) per query.
std::int64_t nearest_brute(const std::vector<mesh::Vec3>& points,
                           const mesh::Vec3& query);

/// Static k-d tree over a point set: O(log n) expected per query.
class KdTree {
 public:
  explicit KdTree(std::vector<mesh::Vec3> points);

  std::int64_t size() const {
    return static_cast<std::int64_t>(points_.size());
  }

  /// Index (into the constructor's point vector) of the nearest point.
  std::int64_t nearest(const mesh::Vec3& query) const;

  /// Nearest donor for every query point, searched in parallel over a
  /// deterministic chunk decomposition (the batched donor query of an
  /// interface mapping). After the call last_visited() holds the total
  /// node count visited across the whole batch.
  std::vector<std::int64_t> nearest_batch(
      std::span<const mesh::Vec3> queries) const;

  /// Number of nodes visited by the last nearest()/nearest_batch() call
  /// (for the complexity tests and the ablation bench).
  std::int64_t last_visited() const { return visited_; }

 private:
  struct Node {
    std::int64_t point = -1;    ///< index into points_
    int axis = 0;
    std::int64_t left = -1;     ///< node indices, -1 = leaf
    std::int64_t right = -1;
  };

  std::int64_t build(std::vector<std::int64_t>& idx, std::int64_t lo,
                     std::int64_t hi, int depth);
  /// visited is a caller-owned counter so concurrent batch queries never
  /// touch shared state.
  void search(std::int64_t node, const mesh::Vec3& query, std::int64_t& best,
              double& best_d2, std::int64_t& visited) const;

  std::vector<mesh::Vec3> points_;
  std::vector<Node> nodes_;
  std::int64_t root_ = -1;
  mutable std::int64_t visited_ = 0;
};

double distance_squared(const mesh::Vec3& a, const mesh::Vec3& b);

}  // namespace cpx::coupler
