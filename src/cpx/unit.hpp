#pragma once
// Coupler units (CUs): the dedicated rank groups that move boundary data
// between coupled application instances (Fig 1).
//
// One coupling exchange is gather -> map -> interpolate -> scatter:
//   1. the source instance's boundary ranks send interface fields to the
//      CU ranks,
//   2. the CU (re)computes the donor mapping — every exchange for a
//      sliding-plane interface (the rotor rows move each timestep), once
//      ever for a steady-state interface (density<->pressure coupling),
//   3. the CU interpolates fields onto the target discretisation,
//   4. the CU ranks scatter the result to the target instance's boundary
//      ranks.
// Clock propagation through those messages is what serialises the coupled
// simulation: a target instance cannot advance past its coupler.
//
// Search cost per interface cell uses the tree (log n) or brute-force (n)
// model, matching the real implementations in cpx/search.hpp; the paper
// credits the tree search (plus prefetching) for coupling overhead
// dropping below 0.5% of runtime.

#include <cstdint>
#include <string>

#include "comm/communicator.hpp"
#include "sim/app.hpp"

namespace cpx::ckpt {
class Writer;
class Reader;
}  // namespace cpx::ckpt

namespace cpx::coupler {

enum class InterfaceKind {
  kSlidingPlane,  ///< rotor/stator: remap every exchange (0.42% of mesh)
  kSteadyState    ///< density<->pressure: map once (5% of mesh)
};

struct UnitConfig {
  InterfaceKind kind = InterfaceKind::kSlidingPlane;
  std::int64_t interface_cells = 100'000;
  int fields_per_cell = 5;
  bool tree_search = true;

  // Work-model coefficients (virtual cost of the mapping/interpolation).
  // The tree coefficient reflects the production coupler's optimised
  // search with prefetching [31]; the brute-force baseline is what the
  // bench_coupler_overhead ablation compares against.
  double search_flops_per_cell_tree = 20.0;   ///< c * log2(n) applied inside
  double search_flops_per_cell_brute = 3.0;   ///< c * n applied inside
  double interp_flops_per_cell = 20.0;
  double pack_bytes_per_cell = 40.0;
};

/// A coupler unit connecting two application instances.
class CouplerUnit {
 public:
  CouplerUnit(std::string name, const UnitConfig& config,
              sim::RankRange cu_ranks, sim::App& side_a, sim::App& side_b);

  const std::string& name() const { return name_; }
  sim::RankRange ranks() const { return ranks_; }
  const UnitConfig& config() const { return config_; }

  /// One full coupling exchange A -> B and B -> A.
  void exchange(sim::Cluster& cluster);

  /// Virtual seconds of mapping compute per CU rank for one (re)mapping.
  double mapping_seconds(const sim::Cluster& cluster) const;

  /// Resets the steady-state "already mapped" latch (used when reusing the
  /// unit across independent runs).
  void reset() { mapped_ = false; }

  /// Split-phase overlap (docs/communication.md): when a half-exchange
  /// includes a remap, the gather is begun, the donor-mapping compute runs
  /// inside the window, and the gather finishes before interpolation. The
  /// mapping does not read gathered fields (it is pure geometry), so the
  /// exchanged data is unchanged; only the cluster timing differs.
  void set_overlap(bool on) { overlap_ = on; }
  bool overlap() const { return overlap_; }

  /// Snapshot section "coupler/unit/<name>" (docs/checkpoint.md): the
  /// steady-state mapped latch and the overlap flag — the only state a CU
  /// carries between exchanges; communicator and regions are lazily
  /// rebuilt. Restore validates the unit name and throws CheckError.
  void serialize(ckpt::Writer& w) const;
  void restore(ckpt::Reader& r);

  /// Gather/scatter traffic this unit has posted (cluster-global rank
  /// space) — shared byte accounting with every other subsystem, see
  /// docs/communication.md. Zero until the first exchange().
  const comm::CommStats& comm_stats() const {
    static const comm::CommStats kEmpty{};
    return comm_ ? comm_.stats() : kEmpty;
  }

 private:
  void half_exchange(sim::Cluster& cluster, sim::App& src, sim::App& dst,
                     bool remap);

  std::string name_;
  UnitConfig config_;   // construction config // cpx-lint: allow(ckpt)
  sim::RankRange ranks_;  // from assignment // cpx-lint: allow(ckpt)
  sim::App& side_a_;    // wiring // cpx-lint: allow(ckpt)
  sim::App& side_b_;    // wiring // cpx-lint: allow(ckpt)
  bool mapped_ = false;
  bool overlap_ = false;
  // Lazily rebuilt on the first post-restore exchange.
  comm::Communicator comm_;  // cpx-lint: allow(ckpt)

  sim::RegionId region_gather_ = -1;   // cpx-lint: allow(ckpt)
  sim::RegionId region_map_ = -1;      // cpx-lint: allow(ckpt)
  sim::RegionId region_scatter_ = -1;  // cpx-lint: allow(ckpt)
  std::vector<sim::Message> message_scratch_;  // cpx-lint: allow(ckpt)
};

}  // namespace cpx::coupler
