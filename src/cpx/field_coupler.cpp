#include "cpx/field_coupler.hpp"

#include <bit>
#include <cmath>

#include "ckpt/snapshot.hpp"
#include "support/check.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace cpx::coupler {
namespace {

constexpr std::int64_t kInterfaceGrain = 4096;  ///< cells/points per task

}  // namespace

std::vector<mesh::CellId> extract_plane_cells(
    const mesh::UnstructuredMesh& mesh, double z_plane, double tolerance) {
  CPX_REQUIRE(tolerance > 0.0, "extract_plane_cells: bad tolerance");
  // Scan cell chunks in parallel, then concatenate the per-chunk hits in
  // chunk order — same cell ordering as the serial scan.
  const std::int64_t nc = mesh.num_cells();
  const std::int64_t nchunks = support::num_chunks(0, nc, kInterfaceGrain);
  std::vector<std::vector<mesh::CellId>> found(
      static_cast<std::size_t>(nchunks));
  support::parallel_chunks(0, nc, kInterfaceGrain, [&](std::int64_t chunk,
                                                       std::int64_t c0,
                                                       std::int64_t c1, int) {
    auto& hits = found[static_cast<std::size_t>(chunk)];
    for (mesh::CellId c = c0; c < c1; ++c) {
      if (std::abs(mesh.centroids()[static_cast<std::size_t>(c)].z -
                   z_plane) <= tolerance) {
        hits.push_back(c);
      }
    }
  });
  std::vector<mesh::CellId> cells;
  for (const auto& hits : found) {
    cells.insert(cells.end(), hits.begin(), hits.end());
  }
  return cells;
}

std::vector<mesh::Vec3> gather_centroids(
    const mesh::UnstructuredMesh& mesh,
    std::span<const mesh::CellId> cells) {
  std::vector<mesh::Vec3> pts(cells.size());
  support::parallel_for(
      0, static_cast<std::int64_t>(cells.size()), kInterfaceGrain,
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          const mesh::CellId c = cells[static_cast<std::size_t>(i)];
          CPX_REQUIRE(c >= 0 && c < mesh.num_cells(),
                      "gather_centroids: bad cell " << c);
          pts[static_cast<std::size_t>(i)] =
              mesh.centroids()[static_cast<std::size_t>(c)];
        }
      });
  return pts;
}

FieldCoupler::FieldCoupler(std::vector<mesh::Vec3> donor_points,
                           std::vector<mesh::Vec3> target_points,
                           InterfaceKind kind, int stencil_size)
    : donors_(std::move(donor_points)),
      targets_(std::move(target_points)),
      kind_(kind),
      stencil_size_(stencil_size) {
  CPX_REQUIRE(!donors_.empty() && !targets_.empty(),
              "FieldCoupler: empty interface");
  CPX_REQUIRE(stencil_size >= 1, "FieldCoupler: bad stencil size");
}

void FieldCoupler::advance_rotation(double radians) {
  CPX_REQUIRE(kind_ == InterfaceKind::kSlidingPlane,
              "advance_rotation: only sliding-plane interfaces move");
  rotation_ += radians;
}

void FieldCoupler::remap() {
  CPX_METRICS_SCOPE("coupler/remap");
  const std::vector<mesh::Vec3> moved =
      rotation_ == 0.0 ? donors_ : rotate_z(donors_, rotation_);
  stencils_ = build_idw_stencils(moved, targets_, stencil_size_);
  if (check::deep()) {
    validate_stencils(stencils_, donors_.size());
  }
  mapped_rotation_ = rotation_;
  ++remap_count_;
}

void FieldCoupler::transfer(std::span<const double> donor_field,
                            std::span<double> target_field) {
  CPX_REQUIRE(donor_field.size() == donors_.size(),
              "transfer: donor field size mismatch");
  CPX_REQUIRE(target_field.size() == targets_.size(),
              "transfer: target field size mismatch");
  // The transfer is the mini-app's stand-in for the inter-code exchange, so
  // it is tagged as communication; byte volume counts both field payloads.
  CPX_METRICS_SCOPE_COMM("coupler/exchange");
  if (support::metrics::enabled()) {
    support::metrics::counter_add(
        "coupler/exchange_bytes",
        static_cast<std::int64_t>((donor_field.size() + target_field.size()) *
                                  sizeof(double)));
  }
  const bool never_mapped = remap_count_ == 0;
  const bool moved = kind_ == InterfaceKind::kSlidingPlane &&
                     rotation_ != mapped_rotation_;
  if (never_mapped || moved) {
    remap();
  }
  apply_stencils(stencils_, donor_field, target_field);
}

std::uint64_t FieldCoupler::stencil_hash() const {
  std::uint64_t h = 0x637068'636f7570ULL;  // arbitrary nonzero start
  for (const Stencil& s : stencils_) {
    for (std::size_t i = 0; i < s.donors.size(); ++i) {
      h = hash_mix(h, static_cast<std::uint64_t>(s.donors[i]),
                   std::bit_cast<std::uint64_t>(s.weights[i]));
    }
    h = hash_mix(h, s.donors.size());
  }
  return h;
}

void FieldCoupler::serialize(ckpt::Writer& w) const {
  w.begin_section("coupler/field");
  w.put_u64(donors_.size());
  w.put_u64(targets_.size());
  w.put_u8(kind_ == InterfaceKind::kSlidingPlane ? 1 : 0);
  w.put_u32(static_cast<std::uint32_t>(stencil_size_));
  w.put_f64(rotation_);
  w.put_f64(mapped_rotation_);
  w.put_u32(static_cast<std::uint32_t>(remap_count_));
  w.put_u64(stencil_hash());
  w.end_section();
}

void FieldCoupler::restore(ckpt::Reader& r) {
  r.open_section("coupler/field");
  const std::uint64_t donors = r.get_u64();
  const std::uint64_t targets = r.get_u64();
  const InterfaceKind kind = r.get_u8() != 0 ? InterfaceKind::kSlidingPlane
                                             : InterfaceKind::kSteadyState;
  const auto stencil_size = static_cast<int>(r.get_u32());
  CPX_CHECK_MSG(donors == donors_.size() && targets == targets_.size() &&
                    kind == kind_ && stencil_size == stencil_size_,
                "FieldCoupler::restore: snapshot was taken from a different "
                "interface");
  const double rotation = r.get_f64();
  const double mapped_rotation = r.get_f64();
  const auto remaps = static_cast<int>(r.get_u32());
  const std::uint64_t expected_hash = r.get_u64();
  r.end_section();

  // The stencils themselves are not in the snapshot: they are a pure
  // function of the (fixed) geometry and the rotation at the last remap,
  // so rebuild them at that rotation and check the digest — a cheap
  // validation-on-load that the geometry this coupler was constructed
  // with matches the checkpointed run.
  stencils_.clear();
  if (remaps > 0) {
    rotation_ = mapped_rotation;
    remap();
  }
  rotation_ = rotation;
  mapped_rotation_ = mapped_rotation;
  remap_count_ = remaps;
  CPX_CHECK_MSG(stencil_hash() == expected_hash,
                "FieldCoupler::restore: rebuilt stencils disagree with the "
                "checkpointed mapping (geometry mismatch?)");
}

}  // namespace cpx::coupler
