#include "cpx/field_coupler.hpp"

#include <cmath>

#include "support/check.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"

namespace cpx::coupler {
namespace {

constexpr std::int64_t kInterfaceGrain = 4096;  ///< cells/points per task

}  // namespace

std::vector<mesh::CellId> extract_plane_cells(
    const mesh::UnstructuredMesh& mesh, double z_plane, double tolerance) {
  CPX_REQUIRE(tolerance > 0.0, "extract_plane_cells: bad tolerance");
  // Scan cell chunks in parallel, then concatenate the per-chunk hits in
  // chunk order — same cell ordering as the serial scan.
  const std::int64_t nc = mesh.num_cells();
  const std::int64_t nchunks = support::num_chunks(0, nc, kInterfaceGrain);
  std::vector<std::vector<mesh::CellId>> found(
      static_cast<std::size_t>(nchunks));
  support::parallel_chunks(0, nc, kInterfaceGrain, [&](std::int64_t chunk,
                                                       std::int64_t c0,
                                                       std::int64_t c1, int) {
    auto& hits = found[static_cast<std::size_t>(chunk)];
    for (mesh::CellId c = c0; c < c1; ++c) {
      if (std::abs(mesh.centroids()[static_cast<std::size_t>(c)].z -
                   z_plane) <= tolerance) {
        hits.push_back(c);
      }
    }
  });
  std::vector<mesh::CellId> cells;
  for (const auto& hits : found) {
    cells.insert(cells.end(), hits.begin(), hits.end());
  }
  return cells;
}

std::vector<mesh::Vec3> gather_centroids(
    const mesh::UnstructuredMesh& mesh,
    std::span<const mesh::CellId> cells) {
  std::vector<mesh::Vec3> pts(cells.size());
  support::parallel_for(
      0, static_cast<std::int64_t>(cells.size()), kInterfaceGrain,
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          const mesh::CellId c = cells[static_cast<std::size_t>(i)];
          CPX_REQUIRE(c >= 0 && c < mesh.num_cells(),
                      "gather_centroids: bad cell " << c);
          pts[static_cast<std::size_t>(i)] =
              mesh.centroids()[static_cast<std::size_t>(c)];
        }
      });
  return pts;
}

FieldCoupler::FieldCoupler(std::vector<mesh::Vec3> donor_points,
                           std::vector<mesh::Vec3> target_points,
                           InterfaceKind kind, int stencil_size)
    : donors_(std::move(donor_points)),
      targets_(std::move(target_points)),
      kind_(kind),
      stencil_size_(stencil_size) {
  CPX_REQUIRE(!donors_.empty() && !targets_.empty(),
              "FieldCoupler: empty interface");
  CPX_REQUIRE(stencil_size >= 1, "FieldCoupler: bad stencil size");
}

void FieldCoupler::advance_rotation(double radians) {
  CPX_REQUIRE(kind_ == InterfaceKind::kSlidingPlane,
              "advance_rotation: only sliding-plane interfaces move");
  rotation_ += radians;
}

void FieldCoupler::remap() {
  CPX_METRICS_SCOPE("coupler/remap");
  const std::vector<mesh::Vec3> moved =
      rotation_ == 0.0 ? donors_ : rotate_z(donors_, rotation_);
  stencils_ = build_idw_stencils(moved, targets_, stencil_size_);
  if (check::deep()) {
    validate_stencils(stencils_, donors_.size());
  }
  mapped_rotation_ = rotation_;
  ++remap_count_;
}

void FieldCoupler::transfer(std::span<const double> donor_field,
                            std::span<double> target_field) {
  CPX_REQUIRE(donor_field.size() == donors_.size(),
              "transfer: donor field size mismatch");
  CPX_REQUIRE(target_field.size() == targets_.size(),
              "transfer: target field size mismatch");
  // The transfer is the mini-app's stand-in for the inter-code exchange, so
  // it is tagged as communication; byte volume counts both field payloads.
  CPX_METRICS_SCOPE_COMM("coupler/exchange");
  if (support::metrics::enabled()) {
    support::metrics::counter_add(
        "coupler/exchange_bytes",
        static_cast<std::int64_t>((donor_field.size() + target_field.size()) *
                                  sizeof(double)));
  }
  const bool never_mapped = remap_count_ == 0;
  const bool moved = kind_ == InterfaceKind::kSlidingPlane &&
                     rotation_ != mapped_rotation_;
  if (never_mapped || moved) {
    remap();
  }
  apply_stencils(stencils_, donor_field, target_field);
}

}  // namespace cpx::coupler
