#pragma once
// Interface interpolation: once donors are located, field values are
// transferred with inverse-distance weighting over the k nearest donors
// (k = 1 degenerates to nearest-neighbour injection). This is the "map
// values/fields from one simulation to the other, interpolating data" role
// of the coupler.

#include <cstdint>
#include <span>
#include <vector>

#include "cpx/search.hpp"

namespace cpx::coupler {

/// Interpolation stencil of one target point.
struct Stencil {
  std::vector<std::int64_t> donors;
  std::vector<double> weights;  ///< sum to 1
};

/// Builds inverse-distance stencils from `donors` to `targets` using the
/// k-d tree for donor location. k is clamped to the donor count.
std::vector<Stencil> build_idw_stencils(
    const std::vector<mesh::Vec3>& donors,
    const std::vector<mesh::Vec3>& targets, int k = 4);

/// Applies stencils: out[t] = sum_j w_j * field[donor_j].
void apply_stencils(std::span<const Stencil> stencils,
                    std::span<const double> donor_field,
                    std::span<double> target_field);

/// Deep validator (tier 2, support/check.hpp): every stencil is non-empty
/// with matching donor/weight arrays, donor indices in [0, num_donors),
/// finite non-negative weights, and — when partition_of_unity is true (the
/// consistent/IDW case; conservative stencils rescale per donor instead) —
/// weights summing to 1 within 1e-9. Runs automatically after every
/// FieldCoupler remap when check::deep() is on. Throws CheckError.
void validate_stencils(std::span<const Stencil> stencils,
                       std::size_t num_donors,
                       bool partition_of_unity = true);

/// Rotates points about the z axis by `radians` — the relative motion of a
/// sliding-plane interface between timesteps.
std::vector<mesh::Vec3> rotate_z(const std::vector<mesh::Vec3>& points,
                                 double radians);

/// Conservative redistribution of the IDW stencils: rescales the weights
/// per *donor* so that the total transferred quantity is preserved,
///     sum_t out[t] == sum_d field[d]   (for donors reached by a stencil).
/// Consistent (IDW) transfer preserves constants; conservative transfer
/// preserves integrals — the classic coupler trade-off. Use conservative
/// stencils for extensive quantities (mass/heat flux through the
/// interface), consistent ones for intensive fields (velocity, pressure).
std::vector<Stencil> make_conservative(std::span<const Stencil> stencils,
                                       std::size_t num_donors);

}  // namespace cpx::coupler
