#pragma once
// Functional field coupling: the data-plane counterpart of the coupler-
// unit performance model. Extracts interface point sets from meshes,
// builds interpolation stencils through the k-d tree, transfers real
// fields, and — for sliding-plane interfaces — tracks the rotor/stator
// rotation, rebuilding the mapping whenever the relative position has
// changed (the per-timestep remap whose cost §II-A discusses).

#include <cstdint>
#include <span>
#include <vector>

#include "cpx/interpolation.hpp"
#include "cpx/unit.hpp"
#include "mesh/mesh.hpp"

namespace cpx::ckpt {
class Writer;
class Reader;
}  // namespace cpx::ckpt

namespace cpx::coupler {

/// Cells of `mesh` whose centroid lies within `tolerance` of the axial
/// plane z = z_plane — the interface band of a blade-row coupling.
std::vector<mesh::CellId> extract_plane_cells(
    const mesh::UnstructuredMesh& mesh, double z_plane, double tolerance);

/// Centroids of the given cells.
std::vector<mesh::Vec3> gather_centroids(const mesh::UnstructuredMesh& mesh,
                                         std::span<const mesh::CellId> cells);

class FieldCoupler {
 public:
  /// Builds a coupler transferring donor-side fields onto target points.
  /// For kSlidingPlane the donor side rotates about z (advance_rotation);
  /// for kSteadyState the mapping is computed once and reused.
  FieldCoupler(std::vector<mesh::Vec3> donor_points,
               std::vector<mesh::Vec3> target_points, InterfaceKind kind,
               int stencil_size = 4);

  std::size_t num_donors() const { return donors_.size(); }
  std::size_t num_targets() const { return targets_.size(); }

  /// Advances the donor side's rotation about the z axis (radians). Only
  /// meaningful for sliding-plane interfaces.
  void advance_rotation(double radians);
  double rotation() const { return rotation_; }

  /// Interpolates donor_field (per donor point) onto target_field (per
  /// target point), remapping first if the interface moved.
  void transfer(std::span<const double> donor_field,
                std::span<double> target_field);

  /// Number of times the mapping has been (re)built — 1 after the first
  /// transfer for steady interfaces, once per moved transfer for sliding.
  int remap_count() const { return remap_count_; }

  /// Order-sensitive 64-bit digest of the current stencils (donor ids and
  /// weight bit patterns). The snapshot stores it instead of the stencils
  /// themselves; restore rebuilds the mapping and validates against it.
  std::uint64_t stencil_hash() const;

  /// Snapshot section "coupler/field" (docs/checkpoint.md): rotation
  /// state, remap counter, and the stencil digest. The stencils are a
  /// deterministic function of the geometry and the last-mapped rotation,
  /// so restore rebuilds them and throws CheckError if the digest of the
  /// rebuilt mapping disagrees with the stored one.
  void serialize(ckpt::Writer& w) const;
  void restore(ckpt::Reader& r);

 private:
  void remap();

  std::vector<mesh::Vec3> donors_;       // geometry // cpx-lint: allow(ckpt)
  std::vector<mesh::Vec3> targets_;      // geometry // cpx-lint: allow(ckpt)
  InterfaceKind kind_;
  int stencil_size_;
  double rotation_ = 0.0;
  double mapped_rotation_ = -1.0;  ///< rotation at last remap (-1 = never)
  std::vector<Stencil> stencils_;  ///< rebuilt // cpx-lint: allow(ckpt)
  int remap_count_ = 0;
};

}  // namespace cpx::coupler
