#include "cpx/unit.hpp"

#include <algorithm>
#include <cmath>

#include "ckpt/snapshot.hpp"
#include "sim/comm_bridge.hpp"
#include "support/check.hpp"

namespace cpx::coupler {

CouplerUnit::CouplerUnit(std::string name, const UnitConfig& config,
                         sim::RankRange cu_ranks, sim::App& side_a,
                         sim::App& side_b)
    : name_(std::move(name)),
      config_(config),
      ranks_(cu_ranks),
      side_a_(side_a),
      side_b_(side_b) {
  CPX_REQUIRE(cu_ranks.size() >= 1, "CouplerUnit: empty rank range");
  CPX_REQUIRE(config.interface_cells >= 1, "CouplerUnit: empty interface");
}

double CouplerUnit::mapping_seconds(const sim::Cluster& cluster) const {
  const double cells_per_rank =
      static_cast<double>(config_.interface_cells) / ranks_.size();
  const double n = static_cast<double>(config_.interface_cells);
  const double search_flops =
      config_.tree_search
          ? config_.search_flops_per_cell_tree * std::log2(std::max(n, 2.0))
          : config_.search_flops_per_cell_brute * n;
  return cells_per_rank * search_flops / cluster.machine().flop_rate;
}

void CouplerUnit::half_exchange(sim::Cluster& cluster, sim::App& src,
                                sim::App& dst, bool remap) {
  const double cells_per_rank =
      static_cast<double>(config_.interface_cells) / ranks_.size();
  const auto payload_per_cu_rank = static_cast<std::size_t>(
      cells_per_rank * config_.fields_per_cell * sizeof(double));

  // 1. Gather: the source instance's boundary ranks feed the CU ranks.
  // Boundary data comes from the ranks owning the interface region — a
  // subset comparable in size to the CU itself; we spread the payload over
  // min(src ranks, 4 * CU ranks) senders, round-robin onto CU ranks.
  const sim::RankRange src_ranks = src.ranks();
  const int senders = std::min(src_ranks.size(), 4 * ranks_.size());
  for (int s = 0; s < senders; ++s) {
    const sim::Rank from = src_ranks.begin + s;
    const sim::Rank to = ranks_.begin + (s % ranks_.size());
    const auto bytes = static_cast<std::size_t>(
        static_cast<double>(config_.interface_cells) *
        config_.fields_per_cell * sizeof(double) / senders);
    comm_.post(from, to, bytes);
  }
  // 2. (Re)mapping on the CU ranks. The donor mapping is pure geometry —
  // it reads no gathered field data — so when a remap is due it can run
  // inside the gather's flight window (split-phase overlap); the gather
  // must still complete before interpolation touches the fields.
  if (overlap_ && remap) {
    const int pending = sim::begin_exchange(comm_, cluster, region_gather_,
                                            0, message_scratch_);
    const double t_map = mapping_seconds(cluster);
    for (int l = 0; l < ranks_.size(); ++l) {
      cluster.compute_seconds(ranks_.begin + l, t_map, region_map_);
    }
    cluster.exchange_finish(pending);
  } else {
    sim::flush_exchange(comm_, cluster, region_gather_, 0, message_scratch_);
    if (remap) {
      const double t_map = mapping_seconds(cluster);
      for (int l = 0; l < ranks_.size(); ++l) {
        cluster.compute_seconds(ranks_.begin + l, t_map, region_map_);
      }
    }
  }

  // 3. Interpolation + packing on the CU ranks.
  for (int l = 0; l < ranks_.size(); ++l) {
    sim::Work w;
    w.flops = cells_per_rank * config_.interp_flops_per_cell;
    w.bytes = cells_per_rank * config_.pack_bytes_per_cell;
    cluster.compute(ranks_.begin + l, w, region_map_);
  }

  // 4. Scatter to the target instance's boundary ranks.
  const sim::RankRange dst_ranks = dst.ranks();
  const int receivers = std::min(dst_ranks.size(), 4 * ranks_.size());
  for (int r = 0; r < receivers; ++r) {
    const sim::Rank from = ranks_.begin + (r % ranks_.size());
    const sim::Rank to = dst_ranks.begin + r;
    const auto bytes = static_cast<std::size_t>(
        static_cast<double>(payload_per_cu_rank) * ranks_.size() / receivers);
    comm_.post(from, to, bytes);
  }
  sim::flush_exchange(comm_, cluster, region_scatter_, 0, message_scratch_);
}

void CouplerUnit::exchange(sim::Cluster& cluster) {
  region_gather_ = cluster.region(name_ + "/gather");
  region_map_ = cluster.region(name_ + "/map");
  region_scatter_ = cluster.region(name_ + "/scatter");
  if (!comm_ || comm_.size() != cluster.num_ranks()) {
    // Gather/scatter endpoints live in the instances' rank ranges, so the
    // unit's communicator spans the whole cluster.
    comm_ = comm::Communicator::world(cluster.num_ranks(), name_ + "/world");
  }

  const bool remap =
      config_.kind == InterfaceKind::kSlidingPlane || !mapped_;
  half_exchange(cluster, side_a_, side_b_, remap);
  half_exchange(cluster, side_b_, side_a_, /*remap=*/false);
  mapped_ = true;
}

void CouplerUnit::serialize(ckpt::Writer& w) const {
  w.begin_section("coupler/unit/" + name_);
  w.put_str(name_);
  w.put_u8(mapped_ ? 1 : 0);
  w.put_u8(overlap_ ? 1 : 0);
  w.end_section();
}

void CouplerUnit::restore(ckpt::Reader& r) {
  r.open_section("coupler/unit/" + name_);
  const std::string name = r.get_str();
  CPX_CHECK_MSG(name == name_,
                "CouplerUnit::restore: section holds unit '"
                    << name << "', expected '" << name_ << "'");
  mapped_ = r.get_u8() != 0;
  overlap_ = r.get_u8() != 0;
  r.end_section();
}

}  // namespace cpx::coupler
