#include "cpx/search.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "support/check.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"

namespace cpx::coupler {
namespace {

constexpr std::int64_t kQueryGrain = 256;  ///< donor queries per task

}  // namespace

double distance_squared(const mesh::Vec3& a, const mesh::Vec3& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  const double dz = a.z - b.z;
  return dx * dx + dy * dy + dz * dz;
}

std::int64_t nearest_brute(const std::vector<mesh::Vec3>& points,
                           const mesh::Vec3& query) {
  CPX_REQUIRE(!points.empty(), "nearest_brute: empty point set");
  std::int64_t best = 0;
  double best_d2 = distance_squared(points[0], query);
  for (std::size_t i = 1; i < points.size(); ++i) {
    const double d2 = distance_squared(points[i], query);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = static_cast<std::int64_t>(i);
    }
  }
  return best;
}

KdTree::KdTree(std::vector<mesh::Vec3> points) : points_(std::move(points)) {
  CPX_REQUIRE(!points_.empty(), "KdTree: empty point set");
  std::vector<std::int64_t> idx(points_.size());
  std::iota(idx.begin(), idx.end(), 0);
  nodes_.reserve(points_.size());
  root_ = build(idx, 0, static_cast<std::int64_t>(points_.size()), 0);
}

std::int64_t KdTree::build(std::vector<std::int64_t>& idx, std::int64_t lo,
                           std::int64_t hi, int depth) {
  if (lo >= hi) {
    return -1;
  }
  const int axis = depth % 3;
  const auto coord = [&](std::int64_t i) {
    const mesh::Vec3& p = points_[static_cast<std::size_t>(i)];
    return axis == 0 ? p.x : (axis == 1 ? p.y : p.z);
  };
  const std::int64_t mid = lo + (hi - lo) / 2;
  std::nth_element(idx.begin() + lo, idx.begin() + mid, idx.begin() + hi,
                   [&](std::int64_t a, std::int64_t b) {
                     return coord(a) < coord(b);
                   });
  const auto node_id = static_cast<std::int64_t>(nodes_.size());
  nodes_.push_back({idx[static_cast<std::size_t>(mid)], axis, -1, -1});
  const std::int64_t left = build(idx, lo, mid, depth + 1);
  const std::int64_t right = build(idx, mid + 1, hi, depth + 1);
  nodes_[static_cast<std::size_t>(node_id)].left = left;
  nodes_[static_cast<std::size_t>(node_id)].right = right;
  return node_id;
}

void KdTree::search(std::int64_t node, const mesh::Vec3& query,
                    std::int64_t& best, double& best_d2,
                    std::int64_t& visited) const {
  if (node < 0) {
    return;
  }
  ++visited;
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  const mesh::Vec3& p = points_[static_cast<std::size_t>(n.point)];
  const double d2 = distance_squared(p, query);
  if (d2 < best_d2) {
    best_d2 = d2;
    best = n.point;
  }
  const double qc = n.axis == 0 ? query.x : (n.axis == 1 ? query.y : query.z);
  const double pc = n.axis == 0 ? p.x : (n.axis == 1 ? p.y : p.z);
  const double delta = qc - pc;
  const std::int64_t near_side = delta < 0.0 ? n.left : n.right;
  const std::int64_t far_side = delta < 0.0 ? n.right : n.left;
  search(near_side, query, best, best_d2, visited);
  if (delta * delta < best_d2) {
    search(far_side, query, best, best_d2, visited);
  }
}

std::int64_t KdTree::nearest(const mesh::Vec3& query) const {
  std::int64_t visited = 0;
  std::int64_t best = -1;
  double best_d2 = std::numeric_limits<double>::infinity();
  search(root_, query, best, best_d2, visited);
  visited_ = visited;
  return best;
}

std::vector<std::int64_t> KdTree::nearest_batch(
    std::span<const mesh::Vec3> queries) const {
  CPX_METRICS_SCOPE("coupler/search");
  const auto nq = static_cast<std::int64_t>(queries.size());
  std::vector<std::int64_t> out(queries.size(), -1);
  const std::int64_t nchunks = support::num_chunks(0, nq, kQueryGrain);
  std::vector<std::int64_t> visited(static_cast<std::size_t>(nchunks), 0);
  support::parallel_chunks(0, nq, kQueryGrain, [&](std::int64_t chunk,
                                                   std::int64_t q0,
                                                   std::int64_t q1, int) {
    std::int64_t v = 0;
    for (std::int64_t q = q0; q < q1; ++q) {
      std::int64_t best = -1;
      double best_d2 = std::numeric_limits<double>::infinity();
      search(root_, queries[static_cast<std::size_t>(q)], best, best_d2, v);
      out[static_cast<std::size_t>(q)] = best;
    }
    visited[static_cast<std::size_t>(chunk)] = v;
  });
  std::int64_t total = 0;
  for (std::int64_t v : visited) {
    total += v;
  }
  visited_ = total;
  if (support::metrics::enabled()) {
    support::metrics::counter_add("coupler/search_queries", nq);
    support::metrics::counter_add("coupler/search_visited", total);
  }
  return out;
}

}  // namespace cpx::coupler
