#include "cpx/interpolation.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/simd.hpp"

namespace cpx::coupler {
namespace {

constexpr std::int64_t kStencilGrain = 256;  ///< targets per task

/// Inverse-distance weights with an exact-hit guard.
void fill_idw_weights(Stencil& s, const std::vector<mesh::Vec3>& donors,
                      const mesh::Vec3& t) {
  s.weights.assign(s.donors.size(), 0.0);
  double total = 0.0;
  bool exact = false;
  for (std::size_t j = 0; j < s.donors.size(); ++j) {
    const double d2 =
        distance_squared(donors[static_cast<std::size_t>(s.donors[j])], t);
    if (d2 < 1e-24) {
      std::fill(s.weights.begin(), s.weights.end(), 0.0);
      s.weights[j] = 1.0;
      exact = true;
      break;
    }
    s.weights[j] = 1.0 / std::sqrt(d2);
    total += s.weights[j];
  }
  if (!exact) {
    for (double& w : s.weights) {
      w /= total;
    }
  }
}

}  // namespace

std::vector<Stencil> build_idw_stencils(
    const std::vector<mesh::Vec3>& donors,
    const std::vector<mesh::Vec3>& targets, int k) {
  CPX_REQUIRE(!donors.empty(), "build_idw_stencils: empty donor set");
  CPX_REQUIRE(k >= 1, "build_idw_stencils: bad k");
  CPX_METRICS_SCOPE("coupler/map_build");
  const int kk = std::min<int>(k, static_cast<int>(donors.size()));
  const auto nt = static_cast<std::int64_t>(targets.size());

  // Targets are independent, so the interface mapping parallelises over
  // them; each target writes its own pre-allocated stencil slot.
  std::vector<Stencil> stencils(targets.size());
  if (kk == 1) {
    // Nearest-neighbour injection: batch the donor queries through the
    // k-d tree, then weight (trivially 1.0) in parallel.
    const KdTree tree(donors);
    const std::vector<std::int64_t> nearest = tree.nearest_batch(targets);
    support::parallel_for(0, nt, kStencilGrain, [&](std::int64_t t0,
                                                    std::int64_t t1) {
      for (std::int64_t t = t0; t < t1; ++t) {
        Stencil& s = stencils[static_cast<std::size_t>(t)];
        s.donors.assign(1, nearest[static_cast<std::size_t>(t)]);
        fill_idw_weights(s, donors, targets[static_cast<std::size_t>(t)]);
      }
    });
    return stencils;
  }

  // Collect the kk nearest by partial sort over all donors (correct, if
  // not the asymptotically fastest; stencil construction happens once per
  // mapping). The distance scratch is reused per execution lane.
  std::vector<std::vector<std::pair<double, std::int64_t>>> dist(
      static_cast<std::size_t>(support::max_threads()));
  support::parallel_chunks(0, nt, kStencilGrain, [&](std::int64_t,
                                                     std::int64_t t0,
                                                     std::int64_t t1,
                                                     int lane) {
    auto& d = dist[static_cast<std::size_t>(lane)];
    for (std::int64_t t = t0; t < t1; ++t) {
      const mesh::Vec3& target = targets[static_cast<std::size_t>(t)];
      d.clear();
      d.reserve(donors.size());
      for (std::size_t j = 0; j < donors.size(); ++j) {
        d.emplace_back(distance_squared(donors[j], target),
                       static_cast<std::int64_t>(j));
      }
      std::partial_sort(d.begin(), d.begin() + kk, d.end());
      Stencil& s = stencils[static_cast<std::size_t>(t)];
      s.donors.clear();
      for (int j = 0; j < kk; ++j) {
        s.donors.push_back(d[static_cast<std::size_t>(j)].second);
      }
      fill_idw_weights(s, donors, target);
    }
  });
  return stencils;
}

void apply_stencils(std::span<const Stencil> stencils,
                    std::span<const double> donor_field,
                    std::span<double> target_field) {
  CPX_REQUIRE(target_field.size() == stencils.size(),
              "apply_stencils: target size mismatch");
  CPX_METRICS_SCOPE("coupler/interpolate");
  if (support::metrics::enabled()) {
    // Roofline accounting: one multiply-add per stencil term; streamed
    // bytes = weights + donor indices + donor gathers + target stores.
    std::int64_t terms = 0;
    for (const Stencil& s : stencils) {
      terms += static_cast<std::int64_t>(s.donors.size());
    }
    const auto nt = static_cast<std::int64_t>(stencils.size());
    support::metrics::counter_add("coupler/interpolate_flops", 2 * terms);
    support::metrics::counter_add(
        "coupler/interpolate_bytes",
        terms * static_cast<std::int64_t>(2 * sizeof(double) +
                                          sizeof(std::int64_t)) +
            nt * static_cast<std::int64_t>(sizeof(double)));
  }
  const double* pdonor = donor_field.data();
  support::simd::dispatch([&](auto width) {
    constexpr int W = decltype(width)::value;
    support::parallel_for(
        0, static_cast<std::int64_t>(stencils.size()), kStencilGrain,
        [&](std::int64_t t0, std::int64_t t1) {
          for (std::int64_t t = t0; t < t1; ++t) {
            const Stencil& s = stencils[static_cast<std::size_t>(t)];
            const auto k = static_cast<std::int64_t>(s.donors.size());
            const double* pw = s.weights.data();
            const std::int64_t* pd = s.donors.data();
            for (std::int64_t j = 0; j < k; ++j) {
              CPX_DCHECK(pd[j] >= 0 && static_cast<std::size_t>(pd[j]) <
                                           donor_field.size());
            }
            double v;
            // Width-invariant split on the stencil size alone: small
            // stencils (the common IDW k) keep the serial chain; wide
            // ones use the fixed-lane tree (docs/parallelism.md).
            if (k < support::simd::kReduceLanes) {
              v = 0.0;
              for (std::int64_t j = 0; j < k; ++j) {
                v += pw[j] * pdonor[pd[j]];
              }
            } else {
              v = support::simd::tree_reduce<W>(
                  0, k,
                  [&](std::int64_t j) {
                    return support::simd::pack<W>::load(pw + j) *
                           support::simd::pack<W>::gather(pdonor, pd + j);
                  },
                  [&](std::int64_t j) { return pw[j] * pdonor[pd[j]]; });
            }
            target_field[static_cast<std::size_t>(t)] = v;
          }
        });
  });
}

void validate_stencils(std::span<const Stencil> stencils,
                       std::size_t num_donors, bool partition_of_unity) {
  for (std::size_t t = 0; t < stencils.size(); ++t) {
    const Stencil& s = stencils[t];
    CPX_CHECK_MSG(!s.donors.empty(), "stencil " << t << " has no donors");
    CPX_CHECK_MSG(s.donors.size() == s.weights.size(),
                  "stencil " << t << " donor/weight size mismatch");
    double sum = 0.0;
    for (std::size_t j = 0; j < s.donors.size(); ++j) {
      CPX_CHECK_MSG(s.donors[j] >= 0 &&
                        static_cast<std::size_t>(s.donors[j]) < num_donors,
                    "stencil " << t << " donor index " << s.donors[j]
                               << " out of range");
      CPX_CHECK_MSG(std::isfinite(s.weights[j]) && s.weights[j] >= 0.0,
                    "stencil " << t << " weight " << s.weights[j]
                               << " not a finite non-negative value");
      sum += s.weights[j];
    }
    if (partition_of_unity) {
      CPX_CHECK_MSG(std::abs(sum - 1.0) <= 1e-9,
                    "stencil " << t << " weights sum to " << sum
                               << " (interpolation not consistent)");
    }
  }
}

std::vector<Stencil> make_conservative(std::span<const Stencil> stencils,
                                       std::size_t num_donors) {
  // Column sums of the transfer operator: how much of each donor's value
  // the consistent stencils distribute in total.
  std::vector<double> donor_total(num_donors, 0.0);
  for (const Stencil& s : stencils) {
    for (std::size_t j = 0; j < s.donors.size(); ++j) {
      CPX_REQUIRE(static_cast<std::size_t>(s.donors[j]) < num_donors,
                  "make_conservative: donor index out of range");
      donor_total[static_cast<std::size_t>(s.donors[j])] += s.weights[j];
    }
  }
  // Dividing each weight by its donor's column sum makes every reached
  // donor distribute exactly its own value (columns sum to 1).
  std::vector<Stencil> out(stencils.begin(), stencils.end());
  for (Stencil& s : out) {
    for (std::size_t j = 0; j < s.donors.size(); ++j) {
      const double total =
          donor_total[static_cast<std::size_t>(s.donors[j])];
      if (total > 0.0) {
        s.weights[j] /= total;
      }
    }
  }
  return out;
}

std::vector<mesh::Vec3> rotate_z(const std::vector<mesh::Vec3>& points,
                                 double radians) {
  const double c = std::cos(radians);
  const double s = std::sin(radians);
  std::vector<mesh::Vec3> out(points.size());
  support::parallel_for(
      0, static_cast<std::int64_t>(points.size()), 4096,
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          const mesh::Vec3& p = points[static_cast<std::size_t>(i)];
          out[static_cast<std::size_t>(i)] = {c * p.x - s * p.y,
                                              s * p.x + c * p.y, p.z};
        }
      });
  return out;
}

}  // namespace cpx::coupler
