#include "cpx/interpolation.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace cpx::coupler {

std::vector<Stencil> build_idw_stencils(
    const std::vector<mesh::Vec3>& donors,
    const std::vector<mesh::Vec3>& targets, int k) {
  CPX_REQUIRE(!donors.empty(), "build_idw_stencils: empty donor set");
  CPX_REQUIRE(k >= 1, "build_idw_stencils: bad k");
  const int kk = std::min<int>(k, static_cast<int>(donors.size()));
  const KdTree tree(donors);

  std::vector<Stencil> stencils;
  stencils.reserve(targets.size());
  for (const mesh::Vec3& t : targets) {
    Stencil s;
    // k nearest via repeated nearest-with-exclusion would be O(k log n)
    // with a proper k-NN query; for the small k used in coupling we take
    // the nearest donor from the tree and complete the stencil from its
    // neighbourhood by brute force over a candidate ball.
    const std::int64_t first = tree.nearest(t);
    s.donors.push_back(first);
    if (kk > 1) {
      // Collect the kk nearest by partial sort over all donors (correct,
      // if not the asymptotically fastest; stencil construction happens
      // once per mapping).
      std::vector<std::pair<double, std::int64_t>> dist;
      dist.reserve(donors.size());
      for (std::size_t j = 0; j < donors.size(); ++j) {
        dist.emplace_back(distance_squared(donors[j], t),
                          static_cast<std::int64_t>(j));
      }
      std::partial_sort(dist.begin(), dist.begin() + kk, dist.end());
      s.donors.clear();
      for (int j = 0; j < kk; ++j) {
        s.donors.push_back(dist[static_cast<std::size_t>(j)].second);
      }
    }
    // Inverse-distance weights with an exact-hit guard.
    s.weights.resize(s.donors.size());
    double total = 0.0;
    bool exact = false;
    for (std::size_t j = 0; j < s.donors.size(); ++j) {
      const double d2 = distance_squared(
          donors[static_cast<std::size_t>(s.donors[j])], t);
      if (d2 < 1e-24) {
        std::fill(s.weights.begin(), s.weights.end(), 0.0);
        s.weights[j] = 1.0;
        exact = true;
        break;
      }
      s.weights[j] = 1.0 / std::sqrt(d2);
      total += s.weights[j];
    }
    if (!exact) {
      for (double& w : s.weights) {
        w /= total;
      }
    }
    stencils.push_back(std::move(s));
  }
  return stencils;
}

void apply_stencils(std::span<const Stencil> stencils,
                    std::span<const double> donor_field,
                    std::span<double> target_field) {
  CPX_REQUIRE(target_field.size() == stencils.size(),
              "apply_stencils: target size mismatch");
  for (std::size_t t = 0; t < stencils.size(); ++t) {
    const Stencil& s = stencils[t];
    double v = 0.0;
    for (std::size_t j = 0; j < s.donors.size(); ++j) {
      CPX_DCHECK(s.donors[j] >= 0 &&
                 static_cast<std::size_t>(s.donors[j]) < donor_field.size());
      v += s.weights[j] *
           donor_field[static_cast<std::size_t>(s.donors[j])];
    }
    target_field[t] = v;
  }
}

std::vector<Stencil> make_conservative(std::span<const Stencil> stencils,
                                       std::size_t num_donors) {
  // Column sums of the transfer operator: how much of each donor's value
  // the consistent stencils distribute in total.
  std::vector<double> donor_total(num_donors, 0.0);
  for (const Stencil& s : stencils) {
    for (std::size_t j = 0; j < s.donors.size(); ++j) {
      CPX_REQUIRE(static_cast<std::size_t>(s.donors[j]) < num_donors,
                  "make_conservative: donor index out of range");
      donor_total[static_cast<std::size_t>(s.donors[j])] += s.weights[j];
    }
  }
  // Dividing each weight by its donor's column sum makes every reached
  // donor distribute exactly its own value (columns sum to 1).
  std::vector<Stencil> out(stencils.begin(), stencils.end());
  for (Stencil& s : out) {
    for (std::size_t j = 0; j < s.donors.size(); ++j) {
      const double total =
          donor_total[static_cast<std::size_t>(s.donors[j])];
      if (total > 0.0) {
        s.weights[j] /= total;
      }
    }
  }
  return out;
}

std::vector<mesh::Vec3> rotate_z(const std::vector<mesh::Vec3>& points,
                                 double radians) {
  const double c = std::cos(radians);
  const double s = std::sin(radians);
  std::vector<mesh::Vec3> out;
  out.reserve(points.size());
  for (const mesh::Vec3& p : points) {
    out.push_back({c * p.x - s * p.y, s * p.x + c * p.y, p.z});
  }
  return out;
}

}  // namespace cpx::coupler
