#pragma once
// Bridge from the real comm layer to the virtual cluster
// (docs/communication.md).
//
// The distributed solvers move real bytes through comm::Communicator and
// co-simulate their timing on a sim::Cluster. The communicator records
// every delivered message as a (src, dst, bytes) Transfer; these helpers
// drain that record into the cluster, so the virtual machine is charged
// with exactly the message sizes that actually moved — one accounting
// path instead of hand-maintained byte arithmetic at every call site.
//
// `base_rank` maps the communicator's local rank space onto the cluster's
// global ranks (an application instance owns the contiguous range
// [base_rank, base_rank + comm.size())). Both helpers clear the transfer
// record; call clear_transfers() directly for exchanges that should move
// data but not charge the cluster.

#include <vector>

#include "comm/communicator.hpp"
#include "sim/cluster.hpp"

namespace cpx::sim {

/// Charges the recorded transfers as one bulk BSP exchange() round.
/// `scratch` is reused across calls to keep the steady state
/// allocation-free.
void flush_exchange(comm::Communicator& comm, Cluster& cluster,
                    RegionId region, Rank base_rank,
                    std::vector<Message>& scratch);

/// Charges the recorded transfers as eager send() calls in delivery
/// order — the pipeline semantics of chained rank-to-rank hand-offs.
void flush_sends(comm::Communicator& comm, Cluster& cluster,
                 RegionId region, Rank base_rank);

/// Split-phase variant of flush_exchange: posts the recorded transfers
/// with Cluster::exchange_begin and clears the record, returning the
/// handle to pass to Cluster::exchange_finish after the overlapped
/// compute has been charged. With no recorded transfers the returned
/// handle refers to an empty exchange — finishing it is a no-op.
int begin_exchange(comm::Communicator& comm, Cluster& cluster,
                   RegionId region, Rank base_rank,
                   std::vector<Message>& scratch);

}  // namespace cpx::sim
