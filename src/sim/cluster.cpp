#include "sim/cluster.hpp"

#include <algorithm>
#include <cmath>

#include "ckpt/snapshot.hpp"
#include "support/check.hpp"
#include "support/metrics.hpp"

namespace cpx::sim {

Cluster::Cluster(const MachineModel& machine, int num_ranks)
    : machine_(machine),
      num_ranks_(num_ranks),
      num_nodes_((num_ranks + machine.cores_per_node - 1) /
                 machine.cores_per_node),
      clocks_(static_cast<std::size_t>(num_ranks), 0.0),
      comm_bytes_(static_cast<std::size_t>(num_ranks), 0),
      comm_messages_(static_cast<std::size_t>(num_ranks), 0),
      comm_hidden_(static_cast<std::size_t>(num_ranks), 0.0),
      profile_(num_ranks),
      sync_clock_scratch_(static_cast<std::size_t>(num_ranks), 0.0),
      sync_epoch_(static_cast<std::size_t>(num_ranks), 0) {
  CPX_REQUIRE(num_ranks >= 1, "Cluster: need at least one rank");
  CPX_REQUIRE(machine.cores_per_node >= 1, "Cluster: bad cores_per_node");
}

int Cluster::node_of(Rank rank) const {
  CPX_DCHECK(rank >= 0 && rank < num_ranks_);
  return rank / machine_.cores_per_node;
}

int Cluster::ranks_on_node(int node) const {
  CPX_DCHECK(node >= 0 && node < num_nodes_);
  const int begin = node * machine_.cores_per_node;
  return std::min(machine_.cores_per_node, num_ranks_ - begin);
}

double Cluster::clock(Rank rank) const {
  CPX_DCHECK(rank >= 0 && rank < num_ranks_);
  return clocks_[static_cast<std::size_t>(rank)];
}

double Cluster::max_clock() const {
  return *std::max_element(clocks_.begin(), clocks_.end());
}

double Cluster::max_clock(RankRange range) const {
  CPX_REQUIRE(range.begin >= 0 && range.end <= num_ranks_ && range.size() > 0,
              "Cluster: bad rank range");
  return *std::max_element(clocks_.begin() + range.begin,
                           clocks_.begin() + range.end);
}

double Cluster::min_clock(RankRange range) const {
  CPX_REQUIRE(range.begin >= 0 && range.end <= num_ranks_ && range.size() > 0,
              "Cluster: bad rank range");
  return *std::min_element(clocks_.begin() + range.begin,
                           clocks_.begin() + range.end);
}

RegionId Cluster::region(std::string_view name) {
  return profile_.region(name);
}

void Cluster::compute(Rank rank, const Work& work, RegionId region) {
  compute_seconds(rank, machine_.compute_time(work), region);
}

void Cluster::compute_seconds(Rank rank, double seconds, RegionId region) {
  CPX_DCHECK(rank >= 0 && rank < num_ranks_);
  CPX_DCHECK(seconds >= 0.0);
  maybe_fail(rank);
  double& clock_ref = clocks_[static_cast<std::size_t>(rank)];
  record(rank, region, TraceKind::kCompute, clock_ref, clock_ref + seconds);
  clock_ref += seconds;
  profile_.add_compute(rank, region, seconds);
}

void Cluster::account_traffic(Rank src, std::size_t bytes,
                              std::int64_t messages) {
  comm_bytes_[static_cast<std::size_t>(src)] += bytes;
  comm_messages_[static_cast<std::size_t>(src)] += messages;
}

std::size_t Cluster::comm_bytes(Rank rank) const {
  CPX_DCHECK(rank >= 0 && rank < num_ranks_);
  return comm_bytes_[static_cast<std::size_t>(rank)];
}

std::size_t Cluster::comm_bytes(RankRange range) const {
  CPX_REQUIRE(range.begin >= 0 && range.end <= num_ranks_ && range.size() > 0,
              "Cluster: bad rank range");
  std::size_t total = 0;
  for (Rank r = range.begin; r < range.end; ++r) {
    total += comm_bytes_[static_cast<std::size_t>(r)];
  }
  return total;
}

std::int64_t Cluster::comm_messages(Rank rank) const {
  CPX_DCHECK(rank >= 0 && rank < num_ranks_);
  return comm_messages_[static_cast<std::size_t>(rank)];
}

std::int64_t Cluster::comm_messages(RankRange range) const {
  CPX_REQUIRE(range.begin >= 0 && range.end <= num_ranks_ && range.size() > 0,
              "Cluster: bad rank range");
  std::int64_t total = 0;
  for (Rank r = range.begin; r < range.end; ++r) {
    total += comm_messages_[static_cast<std::size_t>(r)];
  }
  return total;
}

void Cluster::bump_to(Rank rank, double time, RegionId region) {
  double& c = clocks_[static_cast<std::size_t>(rank)];
  if (time > c) {
    record(rank, region, TraceKind::kComm, c, time);
    profile_.add_comm(rank, region, time - c);
    c = time;
  }
}

void Cluster::exchange(std::span<const Message> messages, RegionId region) {
  if (messages.empty()) {
    return;
  }
  // A synchronous exchange is a split-phase one with an empty window:
  // receivers wait immediately, so the hidden-time channel stays zero and
  // the charging is identical to the historical three-pass implementation.
  exchange_finish(exchange_begin(messages, region));
}

int Cluster::exchange_begin(std::span<const Message> messages,
                            RegionId region) {
  // Reuse a finished slot; growing happens only while the set of
  // concurrently in-flight exchanges is still being discovered.
  int slot = -1;
  for (std::size_t i = 0; i < pending_exchanges_.size(); ++i) {
    if (!pending_exchanges_[i].active) {
      slot = static_cast<int>(i);
      break;
    }
  }
  if (slot < 0) {
    pending_exchanges_.emplace_back();
    slot = static_cast<int>(pending_exchanges_.size()) - 1;
  }
  PendingExchange& pe = pending_exchanges_[static_cast<std::size_t>(slot)];
  pe.active = true;
  pe.region = region;
  pe.messages.clear();
  pe.begin_clocks.clear();

  // Pass 1: count sending ranks per node for injection-bandwidth sharing.
  senders_per_node_.assign(static_cast<std::size_t>(num_nodes_), 0);
  // A rank may send several messages; count distinct inter-node senders
  // approximately by counting inter-node messages per node (each message
  // occupies the NIC, so contention scales with message concurrency).
  for (const Message& m : messages) {
    CPX_DCHECK(m.src >= 0 && m.src < num_ranks_);
    CPX_DCHECK(m.dst >= 0 && m.dst < num_ranks_);
    if (node_of(m.src) != node_of(m.dst)) {
      ++senders_per_node_[static_cast<std::size_t>(node_of(m.src))];
    }
  }

  // Pass 2: compute send completion times (serialise per-sender overheads)
  // and arrivals. Arrivals are fixed here — compute issued between begin
  // and finish cannot make the wire faster.
  for (const Message& m : messages) {
    maybe_fail(m.src);
    const bool same_node = node_of(m.src) == node_of(m.dst);
    // Sender pays the per-message software overhead; multiple messages from
    // one rank serialise naturally because we advance its clock in place.
    double& src_clock = clocks_[static_cast<std::size_t>(m.src)];
    src_clock += machine_.msg_overhead;
    profile_.add_comm(m.src, region, machine_.msg_overhead);
    account_traffic(m.src, m.bytes);

    double bw = machine_.bandwidth(same_node);
    if (!same_node) {
      const int concurrent =
          senders_per_node_[static_cast<std::size_t>(node_of(m.src))];
      const double nic_share =
          machine_.node_injection_bw / std::max(1, concurrent);
      bw = std::min(bw, nic_share);
    }
    pe.messages.push_back({m.dst, src_clock + machine_.latency(same_node) +
                                      static_cast<double>(m.bytes) / bw});
  }

  // Snapshot every destination's clock after all senders have been
  // charged: the synchronous counterfactual would start waiting here.
  for (const PendingMessage& pm : pe.messages) {
    pe.begin_clocks.push_back(clocks_[static_cast<std::size_t>(pm.dst)]);
  }
  return slot;
}

void Cluster::exchange_finish(int exchange) {
  CPX_REQUIRE(exchange >= 0 &&
                  static_cast<std::size_t>(exchange) <
                      pending_exchanges_.size() &&
              pending_exchanges_[static_cast<std::size_t>(exchange)].active,
              "exchange_finish: no exchange in flight with handle "
                  << exchange);
  PendingExchange& pe =
      pending_exchanges_[static_cast<std::size_t>(exchange)];
  ++finish_epoch_;

  // Pass A (before any bump): open the per-destination counterfactual
  // clocks and measure the overlap window (compute done since begin).
  double window_total = 0.0;
  for (std::size_t i = 0; i < pe.messages.size(); ++i) {
    const auto dst = static_cast<std::size_t>(pe.messages[i].dst);
    if (sync_epoch_[dst] != finish_epoch_) {
      sync_epoch_[dst] = finish_epoch_;
      sync_clock_scratch_[dst] = pe.begin_clocks[i];
      window_total += clocks_[dst] - pe.begin_clocks[i];
    }
  }

  // Pass B: receivers pay a per-message overhead and wait for arrivals —
  // but only for the part of each flight their window did not cover. The
  // counterfactual replay advances from the begin snapshot with the exact
  // synchronous recurrence, so hidden time is sync wait minus real wait.
  double hidden_total = 0.0;
  for (const PendingMessage& pm : pe.messages) {
    const auto dst = static_cast<std::size_t>(pm.dst);
    double& sync_clock = sync_clock_scratch_[dst];
    const double sync_wait = std::max(0.0, pm.arrival - sync_clock);
    const double real_wait = std::max(0.0, pm.arrival - clocks_[dst]);
    sync_clock = std::max(sync_clock, pm.arrival) + machine_.msg_overhead;
    const double hidden = std::max(0.0, sync_wait - real_wait);
    comm_hidden_[dst] += hidden;
    hidden_total += hidden;

    bump_to(pm.dst, pm.arrival, pe.region);
    clocks_[dst] += machine_.msg_overhead;
    profile_.add_comm(pm.dst, pe.region, machine_.msg_overhead);
  }

  if (support::metrics::enabled()) {
    support::metrics::counter_add(
        "comm/overlap_window_ns",
        static_cast<std::int64_t>(window_total * 1e9));
    support::metrics::counter_add(
        "comm/overlap_hidden_ns",
        static_cast<std::int64_t>(hidden_total * 1e9));
  }
  pe.active = false;  // storage kept for reuse
}

void Cluster::send_overlapped(Rank src, Rank dst, std::size_t bytes,
                              double recv_posted_clock, RegionId region) {
  CPX_DCHECK(src >= 0 && src < num_ranks_);
  CPX_DCHECK(dst >= 0 && dst < num_ranks_);
  maybe_fail(src);
  const bool same_node = node_of(src) == node_of(dst);
  double& src_clock = clocks_[static_cast<std::size_t>(src)];
  src_clock += machine_.msg_overhead;
  profile_.add_comm(src, region, machine_.msg_overhead);
  account_traffic(src, bytes);
  const double arrival = src_clock + machine_.wire_time(bytes, same_node);

  // Receiver credited with having posted at recv_posted_clock: compute
  // charged since then (the overlap window) hides the flight; only the
  // remaining wait is real, the rest is the hidden-time channel.
  double& dst_clock = clocks_[static_cast<std::size_t>(dst)];
  const double window = std::max(0.0, dst_clock - recv_posted_clock);
  const double sync_wait = std::max(0.0, arrival - recv_posted_clock);
  const double real_wait = std::max(0.0, arrival - dst_clock);
  const double hidden = std::max(0.0, sync_wait - real_wait);
  comm_hidden_[static_cast<std::size_t>(dst)] += hidden;

  bump_to(dst, arrival, region);
  dst_clock += machine_.msg_overhead;
  profile_.add_comm(dst, region, machine_.msg_overhead);

  if (support::metrics::enabled()) {
    support::metrics::counter_add(
        "comm/overlap_window_ns", static_cast<std::int64_t>(window * 1e9));
    support::metrics::counter_add(
        "comm/overlap_hidden_ns", static_cast<std::int64_t>(hidden * 1e9));
  }
}

double Cluster::comm_hidden_seconds(Rank rank) const {
  CPX_DCHECK(rank >= 0 && rank < num_ranks_);
  return comm_hidden_[static_cast<std::size_t>(rank)];
}

double Cluster::comm_hidden_seconds(RankRange range) const {
  CPX_REQUIRE(range.begin >= 0 && range.end <= num_ranks_ && range.size() > 0,
              "Cluster: bad rank range");
  double total = 0.0;
  for (Rank r = range.begin; r < range.end; ++r) {
    total += comm_hidden_[static_cast<std::size_t>(r)];
  }
  return total;
}

void Cluster::send(Rank src, Rank dst, std::size_t bytes, RegionId region) {
  CPX_DCHECK(src >= 0 && src < num_ranks_);
  CPX_DCHECK(dst >= 0 && dst < num_ranks_);
  maybe_fail(src);
  const bool same_node = node_of(src) == node_of(dst);
  double& src_clock = clocks_[static_cast<std::size_t>(src)];
  src_clock += machine_.msg_overhead;
  profile_.add_comm(src, region, machine_.msg_overhead);
  account_traffic(src, bytes);
  const double arrival = src_clock + machine_.wire_time(bytes, same_node);
  bump_to(dst, arrival, region);
  clocks_[static_cast<std::size_t>(dst)] += machine_.msg_overhead;
  profile_.add_comm(dst, region, machine_.msg_overhead);
}

void Cluster::allreduce(RankRange range, std::size_t bytes, RegionId region) {
  CPX_REQUIRE(range.begin >= 0 && range.end <= num_ranks_ && range.size() > 0,
              "Cluster: bad rank range");
  if (range.size() == 1) {
    return;
  }
  const int nodes = node_of(range.end - 1) - node_of(range.begin) + 1;
  const double cost = machine_.allreduce_time(range.size(), nodes, bytes);
  const double done = max_clock(range) + cost;
  for (Rank r = range.begin; r < range.end; ++r) {
    account_traffic(r, bytes);
    bump_to(r, done, region);
  }
}

void Cluster::barrier(RankRange range, RegionId region) {
  CPX_REQUIRE(range.begin >= 0 && range.end <= num_ranks_ && range.size() > 0,
              "Cluster: bad rank range");
  if (range.size() == 1) {
    return;
  }
  const int nodes = node_of(range.end - 1) - node_of(range.begin) + 1;
  const double done =
      max_clock(range) + machine_.barrier_time(range.size(), nodes);
  for (Rank r = range.begin; r < range.end; ++r) {
    bump_to(r, done, region);
  }
}

void Cluster::broadcast(RankRange range, Rank root, std::size_t bytes,
                        RegionId region) {
  CPX_REQUIRE(range.contains(root), "Cluster: broadcast root outside range");
  if (range.size() == 1) {
    return;
  }
  const int nodes = node_of(range.end - 1) - node_of(range.begin) + 1;
  const double done =
      clock(root) + machine_.broadcast_time(range.size(), nodes, bytes);
  account_traffic(root, bytes);
  for (Rank r = range.begin; r < range.end; ++r) {
    bump_to(r, done, region);
  }
}

void Cluster::gather(RankRange range, Rank root, std::size_t bytes_per_rank,
                     RegionId region) {
  CPX_REQUIRE(range.contains(root), "Cluster: gather root outside range");
  if (range.size() == 1) {
    return;
  }
  // Model: binomial-tree gather; data volume at the root dominates, so cost
  // is latency rounds plus the full payload crossing the root's link.
  const int nodes = node_of(range.end - 1) - node_of(range.begin) + 1;
  const double payload =
      static_cast<double>(bytes_per_rank) * (range.size() - 1);
  const double link_bw = nodes > 1 ? machine_.bw_inter : machine_.bw_intra;
  const double cost = machine_.barrier_time(range.size(), nodes) / 2.0 +
                      payload / link_bw +
                      machine_.msg_overhead * std::log2(range.size());
  const double done = max_clock(range) + cost;
  for (Rank r = range.begin; r < range.end; ++r) {
    if (r != root) {
      account_traffic(r, bytes_per_rank);
    }
    bump_to(r, done, region);
  }
}

void Cluster::alltoall(RankRange range, std::size_t bytes_per_pair,
                       RegionId region) {
  CPX_REQUIRE(range.begin >= 0 && range.end <= num_ranks_ && range.size() > 0,
              "Cluster: bad rank range");
  if (range.size() == 1) {
    return;
  }
  const int nodes = node_of(range.end - 1) - node_of(range.begin) + 1;
  const double done =
      max_clock(range) +
      machine_.alltoall_time(range.size(), nodes, bytes_per_pair);
  for (Rank r = range.begin; r < range.end; ++r) {
    account_traffic(r, bytes_per_pair * static_cast<std::size_t>(
                                            range.size() - 1),
                    range.size() - 1);
    bump_to(r, done, region);
  }
}

void Cluster::wait_until(RankRange range, double time, RegionId region) {
  CPX_REQUIRE(range.begin >= 0 && range.end <= num_ranks_ && range.size() > 0,
              "Cluster: bad rank range");
  for (Rank r = range.begin; r < range.end; ++r) {
    bump_to(r, time, region);
  }
}

void Cluster::comm_delay(Rank rank, double seconds, RegionId region) {
  CPX_DCHECK(rank >= 0 && rank < num_ranks_);
  CPX_DCHECK(seconds >= 0.0);
  double& clock_ref = clocks_[static_cast<std::size_t>(rank)];
  record(rank, region, TraceKind::kComm, clock_ref, clock_ref + seconds);
  clock_ref += seconds;
  profile_.add_comm(rank, region, seconds);
}

void Cluster::reset() {
  reset_clocks();
  profile_.reset();
  if (trace_ != nullptr) {
    trace_->clear();
  }
}

void Cluster::reset_clocks() {
  std::fill(clocks_.begin(), clocks_.end(), 0.0);
  std::fill(comm_bytes_.begin(), comm_bytes_.end(), 0);
  std::fill(comm_messages_.begin(), comm_messages_.end(), 0);
  std::fill(comm_hidden_.begin(), comm_hidden_.end(), 0.0);
  for (PendingExchange& pe : pending_exchanges_) {
    pe.active = false;
  }
  current_step_ = 0;
}

void Cluster::inject_failure(Rank rank, int step) {
  CPX_REQUIRE(rank >= 0 && rank < num_ranks_,
              "inject_failure: bad rank " << rank);
  CPX_REQUIRE(step >= 0, "inject_failure: bad step " << step);
  failed_rank_ = rank;
  failure_step_ = step;
}

void Cluster::clear_failure() {
  failed_rank_ = -1;
  failure_step_ = 0;
}

void Cluster::serialize(ckpt::Writer& w) const {
  for (const PendingExchange& pe : pending_exchanges_) {
    CPX_REQUIRE(!pe.active,
                "Cluster::serialize: split-phase exchange still in flight");
  }
  w.begin_section("sim/cluster");
  w.put_u32(static_cast<std::uint32_t>(num_ranks_));
  w.put_u32(static_cast<std::uint32_t>(current_step_));
  w.put_f64_span(clocks_);
  for (const std::size_t b : comm_bytes_) {
    w.put_u64(static_cast<std::uint64_t>(b));
  }
  w.put_i64_span(comm_messages_);
  w.put_f64_span(comm_hidden_);
  w.end_section();
  profile_.serialize(w);
}

void Cluster::restore(ckpt::Reader& r) {
  r.open_section("sim/cluster");
  const auto ranks = static_cast<int>(r.get_u32());
  CPX_CHECK_MSG(ranks == num_ranks_,
                "Cluster::restore: snapshot holds " << ranks
                                                    << " ranks, expected "
                                                    << num_ranks_);
  current_step_ = static_cast<int>(r.get_u32());
  r.get_f64_vec(clocks_);
  CPX_CHECK_MSG(static_cast<int>(clocks_.size()) == num_ranks_,
                "Cluster::restore: clock array truncated");
  for (std::size_t& b : comm_bytes_) {
    b = static_cast<std::size_t>(r.get_u64());
  }
  r.get_i64_vec(comm_messages_);
  r.get_f64_vec(comm_hidden_);
  CPX_CHECK_MSG(static_cast<int>(comm_messages_.size()) == num_ranks_ &&
                    static_cast<int>(comm_hidden_.size()) == num_ranks_,
                "Cluster::restore: traffic arrays truncated");
  r.end_section();
  profile_.restore(r);
  for (PendingExchange& pe : pending_exchanges_) {
    pe.active = false;
  }
}

void Cluster::enable_tracing(std::size_t max_events) {
  trace_ = std::make_unique<Trace>(max_events);
}

void Cluster::record(Rank rank, RegionId region, TraceKind kind,
                     double start, double end) {
  if (trace_ != nullptr && end > start) {
    trace_->record(rank, region, kind, start, end);
  }
}

}  // namespace cpx::sim
