#pragma once
// Timeline tracing for the virtual cluster: when enabled, every compute
// and communication interval is recorded as an event and can be exported
// in the Chrome trace-event JSON format (load in chrome://tracing or
// https://ui.perfetto.dev) — the simulator's answer to a Vampir/Score-P
// timeline. Off by default: a 40k-rank engine run would produce tens of
// millions of events; enable it for focused small runs.

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "sim/profile.hpp"

namespace cpx::sim {

enum class TraceKind { kCompute, kComm };

struct TraceEvent {
  Rank rank = 0;
  RegionId region = -1;
  TraceKind kind = TraceKind::kCompute;
  double start = 0.0;  ///< virtual seconds
  double end = 0.0;
};

/// Bounded event store (drops events beyond the cap and counts them).
class Trace {
 public:
  explicit Trace(std::size_t max_events = 1 << 20)
      : max_events_(max_events) {}

  void record(Rank rank, RegionId region, TraceKind kind, double start,
              double end);

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t dropped() const { return dropped_; }
  void clear();

 private:
  std::size_t max_events_;
  std::vector<TraceEvent> events_;
  std::size_t dropped_ = 0;
};

class Cluster;

/// Writes the cluster's recorded trace as Chrome trace-event JSON.
/// pid = node, tid = rank, ts/dur in microseconds of virtual time.
void write_chrome_trace(std::ostream& os, const Cluster& cluster);

}  // namespace cpx::sim
