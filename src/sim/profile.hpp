#pragma once
// Per-rank, per-region virtual-time accounting — the simulator's stand-in
// for ARM MAP. Each compute kernel and communication call is tagged with a
// region ("pressure_field", "spray", ...); the profile accumulates compute
// and communication seconds separately so function-level breakdowns like
// the paper's Fig 5 are first-class outputs.

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace cpx::ckpt {
class Writer;
class Reader;
}  // namespace cpx::ckpt

namespace cpx::sim {

using Rank = int;
using RegionId = int;

/// Compute/communication split for one region.
struct RegionTimes {
  double compute = 0.0;
  double comm = 0.0;
  double total() const { return compute + comm; }

  RegionTimes& operator+=(const RegionTimes& other) {
    compute += other.compute;
    comm += other.comm;
    return *this;
  }
};

class Profile {
 public:
  explicit Profile(int num_ranks);

  int num_ranks() const { return num_ranks_; }

  /// Interns a region name, returning a stable id. Idempotent.
  RegionId region(std::string_view name);

  /// Looks up an existing region id; returns -1 if absent.
  RegionId find_region(std::string_view name) const;

  std::size_t num_regions() const { return names_.size(); }
  const std::string& region_name(RegionId id) const;

  void add_compute(Rank rank, RegionId region, double seconds);
  void add_comm(Rank rank, RegionId region, double seconds);

  /// Time recorded for one rank in one region.
  RegionTimes rank_region(Rank rank, RegionId region) const;

  /// Mean over a rank interval [begin, end).
  RegionTimes mean_over_ranks(RegionId region, Rank begin, Rank end) const;

  /// Max of (compute+comm) over a rank interval, with its split.
  RegionTimes max_over_ranks(RegionId region, Rank begin, Rank end) const;

  /// Sum over all regions for one rank.
  RegionTimes rank_total(Rank rank) const;

  /// Clears all accumulated time (region ids survive).
  void reset();

  /// Snapshot section "sim/profile" (docs/checkpoint.md): region names in
  /// id order plus the per-region per-rank compute/comm arrays. Restore
  /// re-interns the stored names in that order, so region ids handed out
  /// before the snapshot stay valid afterwards; a name that would land on
  /// a different id (the restoring profile interned regions in another
  /// order) throws CheckError.
  void serialize(ckpt::Writer& w) const;
  void restore(ckpt::Reader& r);

 private:
  void ensure_region_storage(RegionId region);

  int num_ranks_;
  std::vector<std::string> names_;
  // Name -> id index (heterogeneous lookup, so region() takes no copy on
  // the hot hit path). Ids stay the order of first interning — names_ is
  // the id-ordered source of truth, the map only accelerates lookup.
  std::map<std::string, RegionId, std::less<>> index_;  // cpx-lint: allow(ckpt)
  // Indexed [region][rank]; grown lazily as regions are interned.
  std::vector<std::vector<double>> compute_;
  std::vector<std::vector<double>> comm_;
};

}  // namespace cpx::sim
