#pragma once
// Interface implemented by every application instance that runs on the
// virtual cluster (MG-CFD rows, the SIMPIC combustor proxy, the pressure-
// solver surrogate). The coupled workflow driver steps instances according
// to the coupling schedule; coupler units move data between them.

#include <string>

#include "sim/cluster.hpp"

namespace cpx::sim {

class App {
 public:
  virtual ~App() = default;

  virtual const std::string& name() const = 0;

  /// The contiguous rank range this instance owns on the cluster.
  virtual RankRange ranks() const = 0;

  /// Advances the instance by one of its own solver timesteps, charging
  /// compute and communication to the cluster.
  virtual void step(Cluster& cluster) = 0;

  /// Bytes of boundary data this instance exposes per coupling exchange
  /// through one interface of `interface_cells` cells.
  virtual std::size_t interface_bytes(std::int64_t interface_cells) const;

  /// Enables split-phase communication/computation overlap where the
  /// instance supports it (docs/communication.md); default is a no-op for
  /// instances with nothing to hide.
  virtual void set_overlap(bool /*on*/) {}
};

}  // namespace cpx::sim
