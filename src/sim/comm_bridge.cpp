#include "sim/comm_bridge.hpp"

#include "support/check.hpp"

namespace cpx::sim {

void flush_exchange(comm::Communicator& comm, Cluster& cluster,
                    RegionId region, Rank base_rank,
                    std::vector<Message>& scratch) {
  const std::span<const comm::Transfer> transfers = comm.transfers();
  scratch.clear();
  scratch.reserve(transfers.size());
  for (const comm::Transfer& t : transfers) {
    const Rank src = base_rank + t.src;
    const Rank dst = base_rank + t.dst;
    CPX_DCHECK(src >= 0 && src < cluster.num_ranks());
    CPX_DCHECK(dst >= 0 && dst < cluster.num_ranks());
    scratch.push_back({src, dst, t.bytes});
  }
  if (!scratch.empty()) {
    cluster.exchange(scratch, region);
  }
  comm.clear_transfers();
}

int begin_exchange(comm::Communicator& comm, Cluster& cluster,
                   RegionId region, Rank base_rank,
                   std::vector<Message>& scratch) {
  const std::span<const comm::Transfer> transfers = comm.transfers();
  scratch.clear();
  scratch.reserve(transfers.size());
  for (const comm::Transfer& t : transfers) {
    const Rank src = base_rank + t.src;
    const Rank dst = base_rank + t.dst;
    CPX_DCHECK(src >= 0 && src < cluster.num_ranks());
    CPX_DCHECK(dst >= 0 && dst < cluster.num_ranks());
    scratch.push_back({src, dst, t.bytes});
  }
  const int handle = cluster.exchange_begin(scratch, region);
  comm.clear_transfers();
  return handle;
}

void flush_sends(comm::Communicator& comm, Cluster& cluster,
                 RegionId region, Rank base_rank) {
  for (const comm::Transfer& t : comm.transfers()) {
    cluster.send(base_rank + t.src, base_rank + t.dst, t.bytes, region);
  }
  comm.clear_transfers();
}

}  // namespace cpx::sim
