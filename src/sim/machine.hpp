#pragma once
// Machine model for the virtual cluster.
//
// The paper's experiments run on ARCHER2 (HPE-Cray EX): dual 64-core AMD
// EPYC 7742 nodes (128 cores/node, ~380 GB/s aggregate memory bandwidth)
// connected by a Slingshot network. This environment has no MPI and a
// single core, so all "measurements" in this repository come from a
// deterministic performance model of that machine: kernels report abstract
// Work (flops + bytes moved + kernel launches), and the model converts Work
// and message sizes into virtual seconds.
//
// The parameters are fixed once in MachineModel::archer2() and reused by
// every experiment; they are never tuned per-figure (see DESIGN.md §5).

#include <cstddef>
#include <cstdint>

namespace cpx::sim {

/// Abstract cost of a compute kernel executed by one rank.
struct Work {
  double flops = 0.0;     ///< floating-point operations
  double bytes = 0.0;     ///< bytes moved to/from memory (useful traffic)
  double launches = 1.0;  ///< kernel invocations (fixed per-call overhead)

  Work& operator+=(const Work& other) {
    flops += other.flops;
    bytes += other.bytes;
    launches += other.launches;
    return *this;
  }
  friend Work operator+(Work a, const Work& b) { return a += b; }
  friend Work operator*(double s, Work w) {
    w.flops *= s;
    w.bytes *= s;
    w.launches *= s;
    return w;
  }
};

/// Parameters of the modelled machine. All times in seconds, sizes in bytes,
/// rates in units/second.
struct MachineModel {
  // --- Node ---
  int cores_per_node = 128;
  double flop_rate = 3.0e9;      ///< effective per-core scalar+SIMD rate
  double node_mem_bw = 350.0e9;  ///< aggregate per-node memory bandwidth
  double kernel_overhead = 2.0e-6;  ///< fixed cost per kernel launch

  // --- Network: intra-node (shared memory transport) ---
  double lat_intra = 4.0e-7;
  double bw_intra = 10.0e9;  ///< per-rank pairwise

  // --- Network: inter-node ---
  double lat_inter = 2.0e-6;
  double bw_inter = 2.0e9;        ///< per-rank share of the NIC
  double node_injection_bw = 25.0e9;  ///< NIC limit shared by a node's ranks

  // --- Software overheads ---
  double msg_overhead = 5.0e-7;  ///< per-message sender/receiver CPU cost

  /// Time for one rank to execute `work`. Memory bandwidth is shared at
  /// full node occupancy (production jobs run fully packed), so a rank's
  /// share is node_mem_bw / cores_per_node.
  double compute_time(const Work& work) const;

  /// Point-to-point message cost components.
  double latency(bool same_node) const { return same_node ? lat_intra : lat_inter; }
  double bandwidth(bool same_node) const { return same_node ? bw_intra : bw_inter; }

  /// Wire time for a message of `bytes` (excludes sender/receiver overhead).
  double wire_time(std::size_t bytes, bool same_node) const;

  /// Cost of an allreduce over `ranks` ranks spanning `nodes` nodes.
  double allreduce_time(int ranks, int nodes, std::size_t bytes) const;

  /// Cost of a barrier over `ranks` ranks spanning `nodes` nodes.
  double barrier_time(int ranks, int nodes) const;

  /// Cost of a broadcast of `bytes` over `ranks` ranks spanning `nodes`.
  double broadcast_time(int ranks, int nodes, std::size_t bytes) const;

  /// Cost of a personalised all-to-all: every rank sends `bytes_per_pair`
  /// to every other rank. Latency-dominated at small payloads — the
  /// per-rank cost grows linearly with the rank count, which is exactly
  /// why §IV-A says collective particle redistribution "can significantly
  /// degrade performance at high core counts".
  double alltoall_time(int ranks, int nodes,
                       std::size_t bytes_per_pair) const;

  /// ARCHER2-like preset (the machine the paper measured on).
  static MachineModel archer2();

  /// A deliberately slow-network variant used in tests/ablations to verify
  /// the simulator responds to machine parameters.
  static MachineModel slow_network();
};

}  // namespace cpx::sim
