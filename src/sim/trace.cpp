#include "sim/trace.hpp"

#include <ostream>

#include "sim/cluster.hpp"
#include "support/check.hpp"
#include "support/metrics.hpp"

namespace cpx::sim {

void Trace::record(Rank rank, RegionId region, TraceKind kind, double start,
                   double end) {
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back({rank, region, kind, start, end});
}

void Trace::clear() {
  events_.clear();
  dropped_ = 0;
}

void write_chrome_trace(std::ostream& os, const Cluster& cluster) {
  CPX_REQUIRE(cluster.tracing_enabled(),
              "write_chrome_trace: tracing is not enabled on this cluster");
  const Trace& trace = *cluster.trace();
  const Profile& profile = cluster.profile();
  os << "[\n";
  // Metadata event first: the dropped-event count, so a truncated timeline
  // (the Trace store is bounded) is detectable instead of silently partial.
  os << R"({"name":"cpx_trace_dropped","ph":"M","pid":0,"tid":0,"args":{"dropped":)"
     << trace.dropped() << "}}";
  for (const TraceEvent& e : trace.events()) {
    // Chrome trace-event "complete" events; virtual seconds -> micros.
    // Region names are user-provided and must be escaped: an unescaped
    // '"' or '\' would make the whole file invalid JSON.
    os << ",\n"
       << R"({"name":")"
       << support::metrics::json_escape(profile.region_name(e.region))
       << R"(","cat":")"
       << (e.kind == TraceKind::kCompute ? "compute" : "comm")
       << R"(","ph":"X","ts":)" << e.start * 1e6 << R"(,"dur":)"
       << (e.end - e.start) * 1e6 << R"(,"pid":)" << cluster.node_of(e.rank)
       << R"(,"tid":)" << e.rank << "}";
  }
  os << "\n]\n";
}

}  // namespace cpx::sim
