#include "sim/trace.hpp"

#include <ostream>

#include "sim/cluster.hpp"
#include "support/check.hpp"

namespace cpx::sim {

void Trace::record(Rank rank, RegionId region, TraceKind kind, double start,
                   double end) {
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back({rank, region, kind, start, end});
}

void Trace::clear() {
  events_.clear();
  dropped_ = 0;
}

void write_chrome_trace(std::ostream& os, const Cluster& cluster) {
  CPX_REQUIRE(cluster.tracing_enabled(),
              "write_chrome_trace: tracing is not enabled on this cluster");
  const Trace& trace = *cluster.trace();
  const Profile& profile = cluster.profile();
  os << "[\n";
  bool first = true;
  for (const TraceEvent& e : trace.events()) {
    if (!first) {
      os << ",\n";
    }
    first = false;
    // Chrome trace-event "complete" events; virtual seconds -> micros.
    os << R"({"name":")" << profile.region_name(e.region)
       << R"(","cat":")"
       << (e.kind == TraceKind::kCompute ? "compute" : "comm")
       << R"(","ph":"X","ts":)" << e.start * 1e6 << R"(,"dur":)"
       << (e.end - e.start) * 1e6 << R"(,"pid":)" << cluster.node_of(e.rank)
       << R"(,"tid":)" << e.rank << "}";
  }
  os << "\n]\n";
}

}  // namespace cpx::sim
