#include "sim/app.hpp"

namespace cpx::sim {

std::size_t App::interface_bytes(std::int64_t interface_cells) const {
  // Default: five double-precision fields per interface cell (the density
  // solver's conserved variables); apps override as needed.
  return static_cast<std::size_t>(interface_cells) * 5 * sizeof(double);
}

}  // namespace cpx::sim
