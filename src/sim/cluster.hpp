#pragma once
// The virtual cluster: per-rank virtual clocks advanced by a machine model.
//
// Execution model (BSP-flavoured discrete events):
//  * Application code iterates over its ranks, calling compute() to account
//    kernel time, then issues bulk point-to-point exchanges and collectives.
//  * exchange() implements a message round: every sender pays a per-message
//    overhead (serialised per sender, with node injection-bandwidth
//    contention), each message arrives at
//        send_completion + latency + bytes/bandwidth,
//    and each receiver's clock advances to the latest arrival it depends
//    on. Waiting time is accounted as communication time, as an MPI
//    profiler would.
//  * Collectives (allreduce/barrier/broadcast) synchronise a contiguous
//    rank range: everyone leaves at max(entry clocks) + collective cost.
//  * send() is a single eagerly-matched message; chaining sends rank
//    i -> i+1 therefore serialises into a pipeline — exactly the behaviour
//    of SIMPIC's distributed tridiagonal field solve.
//
// Clock propagation through messages is what makes coupled multi-app
// schedules come out right: a density-solver rank that waits on coupler
// data cannot advance past the coupler's clock.

#include <cstddef>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "sim/machine.hpp"
#include "sim/profile.hpp"
#include "sim/trace.hpp"

namespace cpx::ckpt {
class Writer;
class Reader;
}  // namespace cpx::ckpt

namespace cpx::sim {

/// Contiguous rank interval [begin, end). All application instances in the
/// coupled workflow own disjoint contiguous ranges.
struct RankRange {
  Rank begin = 0;
  Rank end = 0;

  int size() const { return end - begin; }
  bool contains(Rank r) const { return r >= begin && r < end; }
};

/// One point-to-point message in a bulk exchange.
struct Message {
  Rank src = 0;
  Rank dst = 0;
  std::size_t bytes = 0;
};

/// Thrown when a fault-injected rank reaches its failure step and then
/// touches the cluster (compute or communication): the simulated process
/// died, so the simulation object driving it must be discarded and rebuilt
/// from the last snapshot (docs/checkpoint.md).
class RankFailure : public std::runtime_error {
 public:
  RankFailure(Rank rank, int step)
      : std::runtime_error("rank " + std::to_string(rank) +
                           " failed at step " + std::to_string(step)),
        rank_(rank),
        step_(step) {}

  Rank rank() const { return rank_; }
  int step() const { return step_; }

 private:
  Rank rank_;
  int step_;
};

class Cluster {
 public:
  Cluster(const MachineModel& machine, int num_ranks);

  const MachineModel& machine() const { return machine_; }
  int num_ranks() const { return num_ranks_; }
  int num_nodes() const { return num_nodes_; }

  /// Block placement: rank r lives on node r / cores_per_node.
  int node_of(Rank rank) const;
  /// Number of ranks resident on `node` (cores_per_node except the tail).
  int ranks_on_node(int node) const;

  double clock(Rank rank) const;
  double max_clock() const;
  double max_clock(RankRange range) const;
  double min_clock(RankRange range) const;

  /// Interns a profiling region.
  RegionId region(std::string_view name);
  Profile& profile() { return profile_; }
  const Profile& profile() const { return profile_; }

  // --- Compute ---
  void compute(Rank rank, const Work& work, RegionId region);
  void compute_seconds(Rank rank, double seconds, RegionId region);

  // --- Point-to-point ---
  /// Bulk BSP-style exchange of independent messages.
  void exchange(std::span<const Message> messages, RegionId region);
  /// Single eager message (use for pipelines / coupler hand-offs).
  void send(Rank src, Rank dst, std::size_t bytes, RegionId region);

  // --- Split-phase overlap (docs/communication.md) ---
  /// Posts a bulk exchange without receiving it: senders pay their
  /// per-message overheads and arrival times are fixed now (so compute
  /// issued after begin cannot speed the wire up), but receivers keep
  /// running. Returns a handle for exchange_finish(). Several exchanges
  /// may be in flight; handles are reused after finish, so the warm path
  /// allocates nothing.
  int exchange_begin(std::span<const Message> messages, RegionId region);
  /// Receives a posted exchange: each destination waits only for the
  /// arrivals its concurrent compute did not already cover. The comm time
  /// a synchronous exchange() would have charged but this one did not is
  /// accumulated per destination rank in comm_hidden_seconds() (and, when
  /// host metrics are enabled, the "comm/overlap_hidden_ns" /
  /// "comm/overlap_window_ns" counters).
  void exchange_finish(int exchange);
  /// Overlapped eager message: like send(), but the receiver is credited
  /// with having posted its receive at `recv_posted_clock` (its clock when
  /// the overlap window opened); compute charged since then hides the
  /// flight. Used by the pipelined Thomas carry.
  void send_overlapped(Rank src, Rank dst, std::size_t bytes,
                       double recv_posted_clock, RegionId region);

  /// Virtual comm seconds hidden behind concurrent compute on `rank` —
  /// the honesty channel of the overlap model: clock(r) + nothing, but
  /// the synchronous counterfactual would have charged this much more.
  double comm_hidden_seconds(Rank rank) const;
  double comm_hidden_seconds(RankRange range) const;

  // --- Collectives over a contiguous range ---
  void allreduce(RankRange range, std::size_t bytes, RegionId region);
  void barrier(RankRange range, RegionId region);
  void broadcast(RankRange range, Rank root, std::size_t bytes,
                 RegionId region);
  /// Gather of `bytes_per_rank` from every rank in `range` to `root`.
  void gather(RankRange range, Rank root, std::size_t bytes_per_rank,
              RegionId region);
  /// Personalised all-to-all over the range (`bytes_per_pair` per pair).
  void alltoall(RankRange range, std::size_t bytes_per_pair,
                RegionId region);

  /// Advances every rank in `range` to at least `time`, charging the jump
  /// to `region` as communication (used for schedule-level waits).
  void wait_until(RankRange range, double time, RegionId region);

  /// Charges `seconds` of communication time to one rank without modelling
  /// individual messages — used for latency-bound exchange rounds (e.g.
  /// multigrid coarse levels) where per-message simulation would be wasteful.
  void comm_delay(Rank rank, double seconds, RegionId region);

  // --- Traffic accounting (docs/communication.md) ---
  /// Bytes rank `rank` has injected into the network: message payloads
  /// from exchange()/send(), plus its modelled contribution to
  /// collectives (allreduce/broadcast root/gather leaves/alltoall).
  std::size_t comm_bytes(Rank rank) const;
  /// Total injected bytes over a rank range — the measured per-instance
  /// comm volume consumed by perfmodel (perfmodel::measure_comm_volume).
  std::size_t comm_bytes(RankRange range) const;
  std::int64_t comm_messages(Rank rank) const;
  std::int64_t comm_messages(RankRange range) const;

  /// Zeroes every clock and the profile (region ids survive).
  void reset();

  /// Zeroes the per-rank clocks, traffic counters, hidden-comm totals, and
  /// any split-phase windows still open — but NOT the profile. This is the
  /// between-scenario reset for benchmarks that warm up, reset, then
  /// measure: reusing one cluster across scenarios without it used to
  /// leak the warm-up clocks and comm_hidden_seconds into the measured
  /// averages. Call profile().reset() as well when the measured quantity
  /// is read from the profile.
  void reset_clocks();

  // --- Fault injection (docs/checkpoint.md) ---
  /// Arms a failure: once begin_step() reaches `step`, any compute or
  /// send issued by `rank` throws RankFailure. Models an MPI process
  /// dying mid-step; the workflow catches it, discards the dead
  /// simulation, and restores from the last snapshot.
  void inject_failure(Rank rank, int step);
  void clear_failure();
  bool failure_armed() const { return failed_rank_ >= 0; }

  /// Marks the start of workflow step `step` (drives the failure trigger).
  void begin_step(int step) { current_step_ = step; }
  int current_step() const { return current_step_; }

  /// Snapshot section "sim/cluster" (docs/checkpoint.md): per-rank clocks,
  /// traffic counters, hidden-comm totals, the step counter, and the
  /// nested profile. Requires no split-phase exchange in flight (an open
  /// window is mid-step state that cannot be resumed). Restore validates
  /// the rank count and throws CheckError on mismatch or corruption.
  void serialize(ckpt::Writer& w) const;
  void restore(ckpt::Reader& r);

  /// Enables timeline recording (see sim/trace.hpp). Call before running;
  /// reset() clears recorded events but keeps tracing enabled.
  void enable_tracing(std::size_t max_events = 1 << 20);
  bool tracing_enabled() const { return trace_ != nullptr; }
  const Trace* trace() const { return trace_.get(); }

 private:
  void bump_to(Rank rank, double time, RegionId region);

  void record(Rank rank, RegionId region, TraceKind kind, double start,
              double end);

  /// Throws RankFailure when `rank` is armed and past its failure step.
  void maybe_fail(Rank rank) const {
    if (failed_rank_ >= 0 && rank == failed_rank_ &&
        current_step_ >= failure_step_) {
      throw RankFailure(rank, current_step_);
    }
  }

  MachineModel machine_;  ///< construction config // cpx-lint: allow(ckpt)
  int num_ranks_;
  int num_nodes_;  ///< derived from machine_ // cpx-lint: allow(ckpt)
  void account_traffic(Rank src, std::size_t bytes,
                       std::int64_t messages = 1);

  std::vector<double> clocks_;
  std::vector<std::size_t> comm_bytes_;
  std::vector<std::int64_t> comm_messages_;
  std::vector<double> comm_hidden_;
  Profile profile_;
  std::unique_ptr<Trace> trace_;  ///< diagnostic // cpx-lint: allow(ckpt)

  // Fault-injection trigger (not state of the simulated machine: a
  // restored run re-arms explicitly if it wants another failure).
  Rank failed_rank_ = -1;   // cpx-lint: allow(ckpt)
  int failure_step_ = 0;    // cpx-lint: allow(ckpt)
  int current_step_ = 0;

  // Scratch reused across exchange() calls to avoid reallocations.
  std::vector<int> senders_per_node_;    // cpx-lint: allow(ckpt)
  std::vector<double> arrival_scratch_;  // cpx-lint: allow(ckpt)

  // In-flight split-phase exchanges. Slots (and their message storage) are
  // reused after exchange_finish so the warm path allocates nothing.
  struct PendingMessage {
    Rank dst = 0;
    double arrival = 0.0;
  };
  struct PendingExchange {
    bool active = false;
    RegionId region = -1;
    std::vector<PendingMessage> messages;
    std::vector<double> begin_clocks;  ///< dst clock snapshot, per message
  };
  std::vector<PendingExchange> pending_exchanges_;
  // Epoch-marked per-rank scratch for the synchronous counterfactual
  // replay inside exchange_finish (no per-call clearing).
  std::vector<double> sync_clock_scratch_;  // cpx-lint: allow(ckpt)
  std::vector<std::int64_t> sync_epoch_;    // cpx-lint: allow(ckpt)
  std::int64_t finish_epoch_ = 0;           // cpx-lint: allow(ckpt)
};

}  // namespace cpx::sim
