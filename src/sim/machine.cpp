#include "sim/machine.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace cpx::sim {
namespace {

int log2_ceil(int n) {
  int bits = 0;
  int v = 1;
  while (v < n) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

}  // namespace

double MachineModel::compute_time(const Work& work) const {
  // Memory bandwidth is shared at full node occupancy: production jobs on
  // this class of machine run fully packed (they are charged per node), so
  // a rank's share is node_mem_bw / cores_per_node regardless of how many
  // ranks of *this* instance happen to land on the node. This keeps
  // standalone benchmarks consistent with packed coupled runs.
  const double share = node_mem_bw / static_cast<double>(cores_per_node);
  const double t_flops = work.flops / flop_rate;
  const double t_mem = work.bytes / share;
  // Roofline-style: a kernel is bound by whichever of compute and memory
  // traffic is slower, plus a fixed per-launch overhead.
  return work.launches * kernel_overhead + std::max(t_flops, t_mem);
}

double MachineModel::wire_time(std::size_t bytes, bool same_node) const {
  return latency(same_node) +
         static_cast<double>(bytes) / bandwidth(same_node);
}

double MachineModel::allreduce_time(int ranks, int nodes,
                                    std::size_t bytes) const {
  CPX_DCHECK(ranks >= 1 && nodes >= 1);
  if (ranks <= 1) {
    return 0.0;
  }
  // Two phases (reduce + broadcast), each a binomial tree. Rounds that
  // cross node boundaries pay inter-node latency; within a node the shared
  // memory transport is used. With `nodes` nodes, ceil(log2(nodes)) of the
  // rounds are inter-node.
  const int rounds = log2_ceil(ranks);
  const int inter_rounds = std::min(rounds, log2_ceil(nodes));
  const int intra_rounds = rounds - inter_rounds;
  const double per_inter = lat_inter + msg_overhead +
                           static_cast<double>(bytes) / bw_inter;
  const double per_intra = lat_intra + msg_overhead +
                           static_cast<double>(bytes) / bw_intra;
  return 2.0 * (inter_rounds * per_inter + intra_rounds * per_intra);
}

double MachineModel::barrier_time(int ranks, int nodes) const {
  if (ranks <= 1) {
    return 0.0;
  }
  const int rounds = log2_ceil(ranks);
  const int inter_rounds = std::min(rounds, log2_ceil(nodes));
  const int intra_rounds = rounds - inter_rounds;
  return 2.0 * (inter_rounds * (lat_inter + msg_overhead) +
                intra_rounds * (lat_intra + msg_overhead));
}

double MachineModel::broadcast_time(int ranks, int nodes,
                                    std::size_t bytes) const {
  if (ranks <= 1) {
    return 0.0;
  }
  const int rounds = log2_ceil(ranks);
  const int inter_rounds = std::min(rounds, log2_ceil(nodes));
  const int intra_rounds = rounds - inter_rounds;
  const double per_inter =
      lat_inter + msg_overhead + static_cast<double>(bytes) / bw_inter;
  const double per_intra =
      lat_intra + msg_overhead + static_cast<double>(bytes) / bw_intra;
  return inter_rounds * per_inter + intra_rounds * per_intra;
}

double MachineModel::alltoall_time(int ranks, int nodes,
                                   std::size_t bytes_per_pair) const {
  if (ranks <= 1) {
    return 0.0;
  }
  // Pairwise-exchange algorithm: ranks-1 rounds, each a send+recv. The
  // fraction of partners off-node follows the node count.
  const double inter_fraction =
      nodes <= 1 ? 0.0
                 : static_cast<double>(nodes - 1) / std::max(nodes, 1);
  const double per_round_lat =
      inter_fraction * lat_inter + (1.0 - inter_fraction) * lat_intra;
  const double per_round_bw =
      inter_fraction * bw_inter + (1.0 - inter_fraction) * bw_intra;
  const double per_round = per_round_lat + 2.0 * msg_overhead +
                           static_cast<double>(bytes_per_pair) / per_round_bw;
  return (ranks - 1) * per_round;
}

MachineModel MachineModel::archer2() {
  // Defaults above are the ARCHER2-like values; spelled out here so the
  // preset is explicit and stable even if defaults change.
  MachineModel m;
  m.cores_per_node = 128;
  m.flop_rate = 3.0e9;
  m.node_mem_bw = 350.0e9;
  m.kernel_overhead = 2.0e-6;
  m.lat_intra = 4.0e-7;
  m.bw_intra = 10.0e9;
  m.lat_inter = 2.0e-6;
  m.bw_inter = 2.0e9;
  m.node_injection_bw = 25.0e9;
  m.msg_overhead = 5.0e-7;
  return m;
}

MachineModel MachineModel::slow_network() {
  MachineModel m = archer2();
  m.lat_inter *= 20.0;
  m.bw_inter /= 10.0;
  m.node_injection_bw /= 10.0;
  return m;
}

}  // namespace cpx::sim
