#include "sim/profile.hpp"

#include <algorithm>

#include "ckpt/snapshot.hpp"
#include "support/check.hpp"

namespace cpx::sim {

Profile::Profile(int num_ranks) : num_ranks_(num_ranks) {
  CPX_REQUIRE(num_ranks >= 1, "Profile: need at least one rank");
}

RegionId Profile::region(std::string_view name) {
  const auto it = index_.find(name);
  if (it != index_.end()) {
    return it->second;
  }
  names_.emplace_back(name);
  compute_.emplace_back(static_cast<std::size_t>(num_ranks_), 0.0);
  comm_.emplace_back(static_cast<std::size_t>(num_ranks_), 0.0);
  const auto id = static_cast<RegionId>(names_.size() - 1);
  index_.emplace(names_.back(), id);
  return id;
}

RegionId Profile::find_region(std::string_view name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

const std::string& Profile::region_name(RegionId id) const {
  CPX_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < names_.size(),
              "Profile: bad region id " << id);
  return names_[static_cast<std::size_t>(id)];
}

void Profile::ensure_region_storage(RegionId region) {
  CPX_REQUIRE(region >= 0 && static_cast<std::size_t>(region) < names_.size(),
              "Profile: unknown region id " << region);
}

void Profile::add_compute(Rank rank, RegionId region, double seconds) {
  ensure_region_storage(region);
  CPX_DCHECK(rank >= 0 && rank < num_ranks_);
  CPX_DCHECK(seconds >= 0.0);
  compute_[static_cast<std::size_t>(region)][static_cast<std::size_t>(rank)] +=
      seconds;
}

void Profile::add_comm(Rank rank, RegionId region, double seconds) {
  ensure_region_storage(region);
  CPX_DCHECK(rank >= 0 && rank < num_ranks_);
  CPX_DCHECK(seconds >= 0.0);
  comm_[static_cast<std::size_t>(region)][static_cast<std::size_t>(rank)] +=
      seconds;
}

RegionTimes Profile::rank_region(Rank rank, RegionId region) const {
  CPX_REQUIRE(region >= 0 && static_cast<std::size_t>(region) < names_.size(),
              "Profile: unknown region id " << region);
  CPX_REQUIRE(rank >= 0 && rank < num_ranks_, "Profile: bad rank " << rank);
  return {compute_[static_cast<std::size_t>(region)]
                  [static_cast<std::size_t>(rank)],
          comm_[static_cast<std::size_t>(region)][static_cast<std::size_t>(rank)]};
}

RegionTimes Profile::mean_over_ranks(RegionId region, Rank begin,
                                     Rank end) const {
  CPX_REQUIRE(begin >= 0 && end <= num_ranks_ && begin < end,
              "Profile: bad rank interval [" << begin << ", " << end << ")");
  RegionTimes sum;
  for (Rank r = begin; r < end; ++r) {
    const RegionTimes t = rank_region(r, region);
    sum.compute += t.compute;
    sum.comm += t.comm;
  }
  const double n = static_cast<double>(end - begin);
  return {sum.compute / n, sum.comm / n};
}

RegionTimes Profile::max_over_ranks(RegionId region, Rank begin,
                                    Rank end) const {
  CPX_REQUIRE(begin >= 0 && end <= num_ranks_ && begin < end,
              "Profile: bad rank interval [" << begin << ", " << end << ")");
  RegionTimes best;
  double best_total = -1.0;
  for (Rank r = begin; r < end; ++r) {
    const RegionTimes t = rank_region(r, region);
    if (t.total() > best_total) {
      best_total = t.total();
      best = t;
    }
  }
  return best;
}

RegionTimes Profile::rank_total(Rank rank) const {
  RegionTimes sum;
  for (std::size_t g = 0; g < names_.size(); ++g) {
    sum += rank_region(rank, static_cast<RegionId>(g));
  }
  return sum;
}

void Profile::reset() {
  for (auto& v : compute_) {
    std::fill(v.begin(), v.end(), 0.0);
  }
  for (auto& v : comm_) {
    std::fill(v.begin(), v.end(), 0.0);
  }
}

void Profile::serialize(ckpt::Writer& w) const {
  w.begin_section("sim/profile");
  w.put_u32(static_cast<std::uint32_t>(num_ranks_));
  w.put_u32(static_cast<std::uint32_t>(names_.size()));
  for (std::size_t g = 0; g < names_.size(); ++g) {
    w.put_str(names_[g]);
    w.put_f64_span(compute_[g]);
    w.put_f64_span(comm_[g]);
  }
  w.end_section();
}

void Profile::restore(ckpt::Reader& r) {
  r.open_section("sim/profile");
  const auto ranks = static_cast<int>(r.get_u32());
  CPX_CHECK_MSG(ranks == num_ranks_,
                "Profile::restore: snapshot holds " << ranks
                                                    << " ranks, expected "
                                                    << num_ranks_);
  const std::uint32_t regions = r.get_u32();
  for (std::uint32_t g = 0; g < regions; ++g) {
    const std::string name = r.get_str();
    // Re-intern in stored (id) order: ids handed out before the snapshot
    // stay valid. A clash means this profile interned regions in a
    // different order than the checkpointed run — not resumable.
    const RegionId id = region(name);
    CPX_CHECK_MSG(static_cast<std::uint32_t>(id) == g,
                  "Profile::restore: region '"
                      << name << "' resolves to id " << id
                      << ", snapshot expects " << g);
    r.get_f64_vec(compute_[static_cast<std::size_t>(id)]);
    r.get_f64_vec(comm_[static_cast<std::size_t>(id)]);
    CPX_CHECK_MSG(
        static_cast<int>(compute_[static_cast<std::size_t>(id)].size()) ==
                num_ranks_ &&
            static_cast<int>(comm_[static_cast<std::size_t>(id)].size()) ==
                num_ranks_,
        "Profile::restore: region '" << name << "' arrays truncated");
  }
  // Regions interned after the checkpoint (ids >= the stored count) keep
  // their storage but are zeroed: the checkpointed run never saw them.
  for (std::size_t g = regions; g < names_.size(); ++g) {
    std::fill(compute_[g].begin(), compute_[g].end(), 0.0);
    std::fill(comm_[g].begin(), comm_[g].end(), 0.0);
  }
  r.end_section();
}

}  // namespace cpx::sim
