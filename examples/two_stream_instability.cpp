// Two-stream instability: the canonical kinetic-plasma benchmark, run on
// the real SIMPIC physics. Two cold counter-streaming electron beams are
// electrostatically unstable; a seed perturbation grows exponentially at
// a rate ~ omega_p/2 until the beams trap each other and the field energy
// saturates. Demonstrates that the combustor proxy is a genuine working
// PIC code, not just a cost model.
//
//   ./two_stream_instability [--cells=256] [--ppc=30] [--v0=0.15]

#include <cmath>
#include <iostream>

#include "simpic/pic.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace cpx;
  const Options opts = Options::parse(argc, argv);
  const auto cells = opts.get_int("cells", 256);
  const auto ppc = static_cast<int>(opts.get_int("ppc", 30));
  // Instability condition: k*v0 < ~omega_p with k = 2*pi*m/L. With L = 1
  // only v0 below ~0.1 leaves mode 1 unstable.
  const double v0 = opts.get_double("v0", 0.08);

  simpic::PicOptions pic_opts;
  pic_opts.cells = cells;
  pic_opts.dt = 0.1;
  pic_opts.boundary = simpic::Boundary::kPeriodic;
  simpic::Pic pic(pic_opts);

  // Two counter-streaming beams, ppc particles per cell each, with a small
  // sinusoidal position seed on the forward beam.
  const std::int64_t per_beam = cells * ppc;
  const double weight =
      -pic_opts.length / (2.0 * static_cast<double>(per_beam));
  constexpr double kTwoPi = 6.28318530717958647692;
  for (std::int64_t i = 0; i < per_beam; ++i) {
    const double x0 =
        (static_cast<double>(i) + 0.5) / static_cast<double>(per_beam);
    const double seed =
        1e-3 / kTwoPi * std::sin(kTwoPi * x0);  // mode 1
    pic.add_particle(std::fmod(x0 + seed + 1.0, 1.0), v0, weight);
    pic.add_particle(x0, -v0, weight);
  }
  pic.set_background(1.0);

  print_banner(std::cout, "Two-stream instability (v0 = +/-" +
                              std::to_string(v0) + ")");
  Table history({"t (1/omega_p)", "field energy", "kinetic energy",
                 "total"});
  history.set_precision(4);
  double prev_field = 0.0;
  double max_growth = 0.0;
  const int report_every = 60;
  for (int block = 0; block <= 12; ++block) {
    const auto d = pic.diagnostics();
    history.add_row({block * report_every * pic_opts.dt, d.field_energy,
                     d.kinetic_energy, d.field_energy + d.kinetic_energy});
    if (block > 0 && prev_field > 0.0 && d.field_energy > prev_field) {
      // Growth rate over the block: E ~ exp(2 gamma t).
      max_growth = std::max(
          max_growth, std::log(d.field_energy / prev_field) /
                          (2.0 * report_every * pic_opts.dt));
    }
    prev_field = d.field_energy;
    if (block < 12) {
      pic.run(report_every);
    }
  }
  history.print(std::cout);
  std::cout << "peak exponential growth rate ~ " << max_growth
            << " omega_p (cold two-stream theory: up to 0.5 omega_p)\n"
            << "Field energy grows by orders of magnitude from the seed, "
               "then saturates as the beams trap — the classic kinetic "
               "instability picture.\n";
  return 0;
}
