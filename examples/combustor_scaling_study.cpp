// Combustor scaling study: how the SIMPIC "performance proxy" is
// calibrated (§III of the paper).
//
// Part 1 runs the real 1-D electrostatic PIC physics (a cold-plasma
// oscillation) to show the mini-app is a working solver, not just a cost
// model. Part 2 sweeps SIMPIC configurations with increasing particles-
// per-cell on the virtual cluster and prints where each loses 50% parallel
// efficiency — the knob the paper uses to match pressure-solver meshes of
// different sizes.
//
//   ./combustor_scaling_study [--ppc-list=100,300,1800]

#include <iostream>
#include <memory>
#include <sstream>

#include "perfmodel/sweep.hpp"
#include "simpic/instance.hpp"
#include "simpic/pic.hpp"
#include "simpic/stc.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace cpx;
  const Options opts = Options::parse(argc, argv);

  // --- Part 1: real PIC physics — plasma oscillation at omega_p ---
  print_banner(std::cout, "SIMPIC physics check: cold-plasma oscillation");
  simpic::PicOptions pic_opts;
  pic_opts.cells = 256;
  pic_opts.dt = 0.05;
  simpic::Pic pic(pic_opts);
  pic.load_uniform(/*per_cell=*/20, /*v_thermal=*/0.0,
                   /*perturbation=*/0.02);
  Table physics({"t (1/omega_p)", "field energy", "kinetic energy"});
  physics.set_precision(3);
  for (int s = 0; s <= 120; s += 20) {
    const auto d = pic.diagnostics();
    physics.add_row({s * pic_opts.dt, d.field_energy, d.kinetic_energy});
    pic.run(20);
  }
  physics.print(std::cout);
  std::cout << "(Energy sloshes between field and particles with period "
               "2*pi/omega_p ~ 6.28.)\n";

  // --- Part 2: particles-per-cell moves the scalability crossover ---
  print_banner(std::cout,
               "Particles-per-cell vs the 50% parallel-efficiency "
               "crossover (512k cells)");
  std::vector<double> ppc_list;
  {
    std::istringstream iss(opts.get_string("ppc-list", "30,100,300,1800"));
    std::string tok;
    while (std::getline(iss, tok, ',')) {
      ppc_list.push_back(std::stod(tok));
    }
  }
  const auto machine = sim::MachineModel::archer2();
  const std::vector<int> cores = {128,  256,  512,   1024,  2048,
                                  4096, 8192, 16384, 32768};
  Table crossover({"particles/cell", "PE @ 1024", "PE @ 4096",
                   "PE @ 16384", "~50% PE crossover (cores)"});
  crossover.set_precision(3);
  for (double ppc : ppc_list) {
    simpic::StcConfig cfg;
    cfg.name = "sweep";
    cfg.cells = 512'000;
    cfg.particles_per_cell = ppc;
    cfg.timesteps = 1;
    const auto pts = perfmodel::measure_scaling(
        [&cfg](sim::RankRange r) {
          return std::make_unique<simpic::Instance>("s", cfg, r);
        },
        machine, cores, 2);
    const auto pe_at = [&](int target) {
      for (std::size_t i = 0; i < pts.size(); ++i) {
        if (pts[i].cores == target) {
          return (pts[0].seconds * pts[0].cores) /
                 (pts[i].seconds * pts[i].cores);
        }
      }
      return 0.0;
    };
    // First measured core count whose PE fell below 0.5.
    long long crossover_cores = -1;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      const double pe = (pts[0].seconds * pts[0].cores) /
                        (pts[i].seconds * pts[i].cores);
      if (pe < 0.5) {
        crossover_cores = static_cast<long long>(pts[i].cores);
        break;
      }
    }
    crossover.add_row({ppc, pe_at(1024), pe_at(4096), pe_at(16384),
                       crossover_cores < 0
                           ? Cell{std::string("> 32768")}
                           : Cell{crossover_cores}});
  }
  crossover.print(std::cout);
  std::cout
      << "(This is how Fig 3's configurations were chosen: 100 ppc matches "
         "the 28M-cell pressure case collapsing near 3000 cores; 1800 ppc "
         "matches the 380M case reaching ~50% at 10k cores.)\n";
  return 0;
}
