// Resource planner: the paper's headline use case as a command-line tool.
//
// Given an engine case and a core budget, benchmark every component on the
// virtual cluster, fit scaling curves, and run Algorithm 1 to produce the
// rank allocation and the predicted coupled runtime — the "rapid design
// space and run-time setup exploration" of the paper's abstract.
//
//   ./resource_planner [--cores=40000] [--case=engine|small]
//                      [--optimized] [--density-steps=1000]

#include <algorithm>
#include <iostream>

#include "perfmodel/allocator.hpp"
#include "perfmodel/persistence.hpp"
#include "support/options.hpp"
#include "support/table.hpp"
#include "workflow/case_io.hpp"
#include "workflow/engine_case.hpp"
#include "workflow/models.hpp"

int main(int argc, char** argv) {
  using namespace cpx;
  Options opts = Options::parse(argc, argv);
  opts.describe("cores", "total core budget (default 40000)");
  opts.describe("case", "engine (16-instance HPC-Combustor-HPT), "
                        "engine-casing, or small");
  opts.describe("config", "path to a custom engine-case file "
                          "(overrides --case; see examples/cases/)");
  opts.describe("optimized", "use the Optimized-STC combustor proxy");
  opts.describe("density-steps", "modelled run length (default 1000)");
  opts.describe("save-models", "write the fitted component models to a file");
  opts.describe("load-models",
                "reuse previously fitted models instead of re-benchmarking");
  if (opts.has("help")) {
    std::cout << opts.help_text("resource_planner");
    return 0;
  }

  const int cores = static_cast<int>(opts.get_int("cores", 40000));
  const bool optimized = opts.get_bool("optimized", false);
  const std::string which = opts.get_string("case", "engine");
  const std::string config = opts.get_string("config", "");
  const workflow::EngineCase ec =
      !config.empty() ? workflow::load_engine_case_file(config)
      : which == "small"
          ? workflow::small_validation_case(optimized)
      : which == "engine-casing"
          ? workflow::hpc_combustor_hpt_with_casing(optimized)
          : workflow::hpc_combustor_hpt(optimized);

  workflow::ModelOptions model_opts;
  model_opts.density_steps =
      static_cast<int>(opts.get_int("density-steps", 1000));
  // The paper's 100-rank floor per instance suits a 40,000-core budget;
  // scale it down for small budgets so planning stays feasible.
  model_opts.app_min_ranks = std::min(
      100, std::max(1, cores / (4 * static_cast<int>(ec.instances.size()))));

  std::cout << "case: " << ec.name << " ("
            << static_cast<double>(ec.total_cells()) / 1e9
            << "Bn effective cells, " << ec.instances.size()
            << " instances, " << ec.couplers.size() << " coupler units)\n";
  workflow::CaseModels models;
  const std::string load_path = opts.get_string("load-models", "");
  if (!load_path.empty()) {
    std::cout << "loading fitted models from " << load_path << "...\n";
    const perfmodel::ModelSet saved = perfmodel::load_models_file(load_path);
    models.apps = saved.apps;
    models.cus = saved.cus;
  } else {
    std::cout << "benchmarking components on the virtual cluster...\n";
    models = workflow::build_case_models(ec, sim::MachineModel::archer2(),
                                         model_opts);
  }
  const std::string save_path = opts.get_string("save-models", "");
  if (!save_path.empty()) {
    perfmodel::save_models_file(save_path, {models.apps, models.cus});
    std::cout << "saved fitted models to " << save_path << "\n";
  }
  const perfmodel::Allocation alloc =
      perfmodel::distribute_ranks(models.apps, models.cus, cores);

  print_banner(std::cout, "Rank allocation (" + std::to_string(cores) +
                              "-core budget)");
  Table table({"component", "ranks", "predicted runtime (s)",
               "share of budget %"});
  table.set_precision(4);
  int used = 0;
  for (std::size_t i = 0; i < models.apps.size(); ++i) {
    used += alloc.app_ranks[i];
    table.add_row({models.apps[i].name,
                   static_cast<long long>(alloc.app_ranks[i]),
                   models.apps[i].time(alloc.app_ranks[i]),
                   100.0 * alloc.app_ranks[i] / cores});
  }
  for (std::size_t i = 0; i < models.cus.size(); ++i) {
    used += alloc.cu_ranks[i];
    table.add_row({models.cus[i].name,
                   static_cast<long long>(alloc.cu_ranks[i]),
                   models.cus[i].time(alloc.cu_ranks[i]),
                   100.0 * alloc.cu_ranks[i] / cores});
  }
  table.print(std::cout);
  std::cout << "allocated " << used << " of " << cores << " cores ("
            << cores - used
            << " left over: every component is at its cap or past its "
               "scaling optimum)\n"
            << "predicted coupled runtime = " << alloc.predicted_runtime
            << " virtual s for " << model_opts.density_steps
            << " density steps\n"
            << "  slowest application: " << alloc.app_time
            << " s; slowest coupler unit: " << alloc.cu_time << " s ("
            << 100.0 * alloc.cu_time / alloc.predicted_runtime
            << "% coupling overhead)\n";
  return 0;
}
