// Quickstart: the library in ~60 lines.
//
// Builds a toy coupled simulation — two MG-CFD compressor rows joined by a
// CPX sliding-plane coupler unit — on the virtual ARCHER2-like cluster,
// steps it, and prints where the (virtual) time went. Then benchmarks one
// row standalone, fits a scaling curve, and uses Algorithm 1 to split a
// core budget between the two rows.
//
//   ./quickstart [--cores=1024] [--steps=20]

#include <iostream>
#include <memory>

#include "cpx/unit.hpp"
#include "mgcfd/instance.hpp"
#include "perfmodel/allocator.hpp"
#include "perfmodel/sweep.hpp"
#include "sim/cluster.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace cpx;
  const Options opts = Options::parse(argc, argv);
  const int cores = static_cast<int>(opts.get_int("cores", 1024));
  const int steps = static_cast<int>(opts.get_int("steps", 20));

  // --- 1. A coupled pair of density-solver rows on the virtual cluster ---
  sim::Cluster cluster(sim::MachineModel::archer2(), cores);
  const int row_ranks = (cores - 16) / 2;
  mgcfd::Instance rotor("rotor", 24'000'000, {0, row_ranks});
  mgcfd::Instance stator("stator", 24'000'000, {row_ranks, 2 * row_ranks});
  coupler::UnitConfig cu_config;
  cu_config.kind = coupler::InterfaceKind::kSlidingPlane;
  cu_config.interface_cells = 100'000;  // 0.42% of the smaller mesh
  coupler::CouplerUnit cu("cu_rotor_stator", cu_config,
                          {2 * row_ranks, cores}, rotor, stator);

  for (int s = 0; s < steps; ++s) {
    rotor.step(cluster);
    stator.step(cluster);
    cu.exchange(cluster);  // sliding plane: remapped every step
  }
  std::cout << "coupled " << steps << " steps on " << cores
            << " virtual cores: runtime = " << cluster.max_clock()
            << " virtual seconds\n";

  // Where did rank 0's time go?
  Table where({"region", "compute (s)", "comm (s)"});
  const auto& profile = cluster.profile();
  for (std::size_t g = 0; g < profile.num_regions(); ++g) {
    const auto times = profile.rank_region(0, static_cast<sim::RegionId>(g));
    if (times.total() > 0.0) {
      where.add_row({profile.region_name(static_cast<sim::RegionId>(g)),
                     times.compute, times.comm});
    }
  }
  where.print(std::cout);

  // --- 2. Benchmark, fit, allocate (the paper's §V pipeline in 10 lines).
  const std::vector<int> sweep = {64, 128, 256, 512, 1024, 2048};
  const perfmodel::ScalingCurve curve = perfmodel::fit_scaling(
      [](sim::RankRange r) {
        return std::make_unique<mgcfd::Instance>("row", 24'000'000, r);
      },
      cluster.machine(), sweep);
  std::cout << "\nfitted T(p) = " << curve.coefficients()[0] << "/p + "
            << curve.coefficients()[1] << " + "
            << curve.coefficients()[2] << "*log2(p) + "
            << curve.coefficients()[3] << "*p   (max fit error "
            << 100.0 * curve.max_fit_error() << "%)\n";

  // One row has 3x the mesh: Alg 1 gives it ~3x the ranks.
  perfmodel::InstanceModel small =
      perfmodel::InstanceModel::make("rotor_24m", curve, 24e6, 1, 24e6, 1);
  perfmodel::InstanceModel big =
      perfmodel::InstanceModel::make("stator_72m", curve, 24e6, 1, 72e6, 1);
  const perfmodel::Allocation alloc =
      perfmodel::distribute_ranks(std::vector{small, big}, {}, cores);
  std::cout << "Alg 1 splits " << cores << " cores as rotor_24m="
            << alloc.app_ranks[0] << ", stator_72m=" << alloc.app_ranks[1]
            << " (predicted runtime " << alloc.predicted_runtime
            << " s/step)\n";
  return 0;
}
