// Fully functional coupled simulation at mini scale: two *real*
// rank-distributed Euler solvers (annulus blade-row sectors) exchanging
// boundary fields through the *real* CPX field coupler every step — the
// paper's architecture with actual physics end to end, plus co-simulated
// virtual timing from the attached cluster.
//
// A density pulse is injected near the upstream row's exit plane; the
// coupler carries it across the interface and it appears in the
// downstream row's inlet — the information flow a coupled simulation
// exists to provide (and what boundary-condition hand-offs lose).
//
//   ./coupled_rows_demo [--steps=40] [--parts=4]

#include <algorithm>
#include <cmath>
#include <iostream>

#include "cpx/field_coupler.hpp"
#include "mesh/mesh.hpp"
#include "mgcfd/distributed.hpp"
#include "sim/cluster.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace cpx;
  const Options opts = Options::parse(argc, argv);
  const int steps = static_cast<int>(opts.get_int("steps", 40));
  const int parts = static_cast<int>(opts.get_int("parts", 4));

  // Two identical annulus sectors; the downstream row sits axially behind
  // the upstream one (same local coordinates, shifted interpretation).
  const mesh::UnstructuredMesh row_mesh =
      mesh::make_annulus_mesh(6, 24, 10, 1.0, 2.0, 30.0, 1.0);
  const double dz = 1.0 / 10.0;

  mgcfd::EulerOptions euler;
  euler.mg_levels = 1;
  euler.cfl = 0.4;
  mgcfd::DistributedSolver upstream(row_mesh, parts, euler);
  mgcfd::DistributedSolver downstream(row_mesh, parts, euler);
  const mgcfd::State inf = mgcfd::freestream(0.4, 1.0, 1.0, {0, 0, 1});
  upstream.set_uniform(inf);
  downstream.set_uniform(inf);

  // Interface bands: the upstream exit layer feeds the downstream inlet
  // layer. Targets are matched in the donor plane (z aligned).
  const auto exit_cells =
      coupler::extract_plane_cells(row_mesh, 1.0 - dz / 2.0, dz / 2.5);
  const auto inlet_cells =
      coupler::extract_plane_cells(row_mesh, dz / 2.0, dz / 2.5);
  auto donor_pts = coupler::gather_centroids(row_mesh, exit_cells);
  auto target_pts = coupler::gather_centroids(row_mesh, inlet_cells);
  for (auto& p : target_pts) {
    p.z += 1.0 - dz;  // align the inlet band with the exit plane
  }
  coupler::FieldCoupler coupler_unit(donor_pts, target_pts,
                                     coupler::InterfaceKind::kSlidingPlane);

  // Virtual-cluster co-simulation of both rows (2 * parts ranks).
  sim::Cluster cluster(sim::MachineModel::archer2(), 2 * parts);
  upstream.attach_cluster(&cluster);

  // Inject a density pulse just before the upstream exit.
  for (mesh::CellId c : exit_cells) {
    mgcfd::State bumped = inf;
    bumped[0] *= 1.08;
    bumped[4] *= 1.08;
    upstream.set_cell(c, bumped);
  }

  print_banner(std::cout, "Coupled blade rows — density pulse crossing the "
                          "interface");
  Table history({"step", "upstream exit rho", "downstream inlet rho",
                 "rotation (rad)"});
  history.set_precision(6);

  std::vector<double> donor_field(exit_cells.size());
  std::vector<double> target_field(inlet_cells.size());
  const double omega = 0.002;  // relative rotor rotation per step

  for (int s = 0; s <= steps; ++s) {
    const auto u_up = upstream.gather_solution();
    const auto u_down = downstream.gather_solution();
    double exit_rho = 0.0;
    for (std::size_t i = 0; i < exit_cells.size(); ++i) {
      exit_rho += u_up[static_cast<std::size_t>(exit_cells[i])][0];
    }
    exit_rho /= static_cast<double>(exit_cells.size());
    double inlet_rho = 0.0;
    for (std::size_t i = 0; i < inlet_cells.size(); ++i) {
      inlet_rho += u_down[static_cast<std::size_t>(inlet_cells[i])][0];
    }
    inlet_rho /= static_cast<double>(inlet_cells.size());
    if (s % std::max(steps / 8, 1) == 0) {
      history.add_row({static_cast<long long>(s), exit_rho, inlet_rho,
                       coupler_unit.rotation()});
    }
    if (s == steps) {
      break;
    }

    // Advance both rows, then transfer all five conserved fields through
    // the (sliding) interface into the downstream inlet band.
    upstream.step();
    downstream.step();
    coupler_unit.advance_rotation(omega);
    const auto u = upstream.gather_solution();
    std::vector<mgcfd::State> inlet_states(inlet_cells.size());
    for (int k = 0; k < 5; ++k) {
      for (std::size_t i = 0; i < exit_cells.size(); ++i) {
        donor_field[i] = u[static_cast<std::size_t>(exit_cells[i])]
                          [static_cast<std::size_t>(k)];
      }
      coupler_unit.transfer(donor_field, target_field);
      for (std::size_t i = 0; i < inlet_cells.size(); ++i) {
        inlet_states[i][static_cast<std::size_t>(k)] = target_field[i];
      }
    }
    for (std::size_t i = 0; i < inlet_cells.size(); ++i) {
      downstream.set_cell(inlet_cells[i], inlet_states[i]);
    }
  }
  history.print(std::cout);
  std::cout << "coupler remaps: " << coupler_unit.remap_count()
            << " (sliding plane: one per moved transfer)\n"
            << "upstream co-simulated virtual time: "
            << cluster.max_clock() << " s over " << steps << " steps\n"
            << "The downstream inlet density rises as the pulse crosses "
               "the interface — unsteady information a steady "
               "boundary-condition hand-off would have lost.\n";
  return 0;
}
