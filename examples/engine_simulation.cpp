// Full coupled engine simulation: plan with the model, execute the coupled
// mini-app simulation on the virtual cluster, and compare prediction with
// measurement — the complete §V workflow in one program.
//
//   ./engine_simulation [--cores=40000] [--steps=20] [--optimized]
//                       [--trace=out.json]   (Chrome trace of the coupled
//                        run; use a small --cores with this)

#include <algorithm>
#include <fstream>
#include <iostream>

#include "perfmodel/allocator.hpp"
#include "sim/trace.hpp"
#include "support/options.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "workflow/coupled.hpp"
#include "workflow/engine_case.hpp"
#include "workflow/models.hpp"

int main(int argc, char** argv) {
  using namespace cpx;
  const Options opts = Options::parse(argc, argv);
  const int cores = static_cast<int>(opts.get_int("cores", 40000));
  const int steps = static_cast<int>(opts.get_int("steps", 20));
  const bool optimized = opts.get_bool("optimized", false);

  const workflow::EngineCase ec = workflow::hpc_combustor_hpt(optimized);
  const auto machine = sim::MachineModel::archer2();

  std::cout << "planning " << ec.name << " on " << cores << " cores...\n";
  workflow::ModelOptions model_opts;
  // The paper's 100-rank floor per instance suits a 40,000-core budget;
  // scale it down for small budgets so planning stays feasible.
  model_opts.app_min_ranks = std::min(
      100, std::max(1, cores / (4 * static_cast<int>(ec.instances.size()))));
  const workflow::CaseModels models =
      workflow::build_case_models(ec, machine, model_opts);
  const perfmodel::Allocation alloc =
      perfmodel::distribute_ranks(models.apps, models.cus, cores);

  std::cout << "running " << steps << " density steps ("
            << 2 * steps << " pressure steps) coupled...\n";
  workflow::RankAssignment ra{alloc.app_ranks, alloc.cu_ranks};
  workflow::CoupledSimulation sim(ec, machine, ra);
  const std::string trace_path = opts.get_string("trace", "");
  if (!trace_path.empty()) {
    sim.cluster().enable_tracing(1 << 22);
  }
  sim.run(steps);
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    sim::write_chrome_trace(out, sim.cluster());
    std::cout << "wrote Chrome trace to " << trace_path << " ("
              << sim.cluster().trace()->events().size() << " events, "
              << sim.cluster().trace()->dropped() << " dropped)\n";
  }

  print_banner(std::cout, "Per-instance results");
  Table table({"instance", "ranks", "coupled T (s)", "standalone T (s)",
               "predicted T (s)", "err %"});
  const double model_scale = 1000.0 / steps;  // models assume 1000 steps
  for (std::size_t i = 0; i < models.apps.size(); ++i) {
    const double standalone =
        sim.standalone_runtime(static_cast<int>(i), steps);
    const double predicted =
        models.apps[i].time(alloc.app_ranks[i]) / model_scale;
    table.add_row({models.apps[i].name,
                   static_cast<long long>(alloc.app_ranks[i]),
                   sim.instance_runtime(static_cast<int>(i)), standalone,
                   predicted, percent_error(predicted, standalone)});
  }
  table.print(std::cout);
  std::cout << "coupled runtime = " << sim.runtime()
            << " virtual s; model predicted = "
            << alloc.predicted_runtime / model_scale << " ("
            << percent_error(alloc.predicted_runtime / model_scale,
                             sim.runtime())
            << "% error)\n";
  return 0;
}
